// Package compress reduces a trained model set for serving throughput:
// small-|α| pruning drops support vectors that barely move the decision
// function, and K-means centroid budgeting replaces each class's surviving
// support vectors with a fixed number of centroids whose weight is the
// summed α of their members — predicting via K(x, centroids)·w instead of
// K(x, SV)·α. Prediction cost scales with the centroid budget rather than
// the SV count, which on cluster-structured data buys an order of magnitude
// of throughput for a measured (and metadata-recorded) accuracy delta.
//
// Compression is deterministic: the same input set, budget and seed produce
// a bit-identical reduced set (and therefore the same model hash), because
// the K-means initialisation is drawn from a seeded generator and Lloyd
// sweeps are pure floating-point recurrences.
package compress

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"casvm/internal/kmeans"
	"casvm/internal/la"
	"casvm/internal/model"
)

// Options configures the compression pass.
type Options struct {
	// Budget caps the number of weighted centroids per constituent model
	// (split across the two classes in proportion to their SV counts).
	// 0 disables centroid budgeting; a model already within budget keeps
	// its support vectors untouched.
	Budget int
	// PruneFrac drops support vectors with α < PruneFrac·max(α) before
	// clustering (0 disables pruning). The largest-α vector of each class
	// always survives, so pruning can never silence a class entirely.
	PruneFrac float64
	// Seed drives the K-means initialisation; same seed ⇒ same reduced set.
	Seed int64
	// MaxIter caps Lloyd sweeps per class (≤ 0 selects 30).
	MaxIter int
}

// ModelStats describes one constituent model's reduction.
type ModelStats struct {
	SVBefore  int  `json:"sv_before"`
	SVAfter   int  `json:"sv_after"`
	Pruned    int  `json:"pruned"`    // SVs dropped by the α threshold
	Clustered bool `json:"clustered"` // centroid budgeting engaged
}

// Stats summarises a compression pass.
type Stats struct {
	SVBefore int          `json:"sv_before"`
	SVAfter  int          `json:"sv_after"`
	PerModel []ModelStats `json:"per_model"`
}

// Ratio returns SVAfter/SVBefore (1 when the set was empty).
func (s Stats) Ratio() float64 {
	if s.SVBefore == 0 {
		return 1
	}
	return float64(s.SVAfter) / float64(s.SVBefore)
}

// Set compresses every model of s under o, returning a new set (s is never
// mutated) annotated with the compression parameters and SV counts in its
// metadata. Centers, kernel, biases and fallbacks carry over unchanged.
func Set(s *model.Set, o Options) (*model.Set, Stats, error) {
	if o.Budget < 0 || o.PruneFrac < 0 || o.PruneFrac >= 1 {
		return nil, Stats{}, fmt.Errorf("compress: bad options budget=%d prune=%v", o.Budget, o.PruneFrac)
	}
	maxIter := o.MaxIter
	if maxIter <= 0 {
		maxIter = 30
	}
	out := &model.Set{Centers: s.Centers, Models: make([]*model.Model, s.P())}
	st := Stats{PerModel: make([]ModelStats, s.P())}
	for j, m := range s.Models {
		// Each model draws from its own seeded stream, so per-model results
		// do not depend on how many SVs the models before it clustered.
		rng := rand.New(rand.NewSource(o.Seed + int64(j)))
		cm, ms := compressModel(m, o, maxIter, rng)
		if err := cm.Validate(); err != nil {
			return nil, Stats{}, fmt.Errorf("compress: model %d: %w", j, err)
		}
		out.Models[j] = cm
		st.PerModel[j] = ms
		st.SVBefore += ms.SVBefore
		st.SVAfter += ms.SVAfter
	}
	out.SetMeta("compress_budget", strconv.Itoa(o.Budget))
	out.SetMeta("compress_prune", strconv.FormatFloat(o.PruneFrac, 'g', -1, 64))
	out.SetMeta("compress_seed", strconv.FormatInt(o.Seed, 10))
	out.SetMeta("sv_before", strconv.Itoa(st.SVBefore))
	out.SetMeta("sv_after", strconv.Itoa(st.SVAfter))
	return out, st, nil
}

// Annotate measures full-vs-compressed accuracy on held-out (q, y) and
// embeds both figures and their delta in the compressed set's metadata,
// returning (fullAcc, compressedAcc). Serving surfaces (the /models
// endpoint, casvm-compress) read these annotations back.
func Annotate(compressed, full *model.Set, q *la.Matrix, y []float64) (float64, float64) {
	fullAcc := full.Accuracy(q, y)
	compAcc := compressed.Accuracy(q, y)
	compressed.SetMeta("accuracy_full", strconv.FormatFloat(fullAcc, 'g', -1, 64))
	compressed.SetMeta("accuracy_compressed", strconv.FormatFloat(compAcc, 'g', -1, 64))
	compressed.SetMeta("accuracy_delta", strconv.FormatFloat(fullAcc-compAcc, 'g', -1, 64))
	return fullAcc, compAcc
}

// compressModel reduces one model: α-prune, then per-class centroid
// budgeting when the survivor count exceeds the budget.
func compressModel(m *model.Model, o Options, maxIter int, rng *rand.Rand) (*model.Model, ModelStats) {
	st := ModelStats{SVBefore: m.NSV()}
	if m.NSV() == 0 {
		st.SVAfter = 0
		return &model.Model{
			Kernel: m.Kernel, SVX: m.SVX, SVY: nil, Alpha: nil,
			B: m.B, Fallback: m.Fallback,
		}, st
	}
	keep := pruneIdx(m, o.PruneFrac)
	st.Pruned = m.NSV() - len(keep)

	pos, neg := splitByLabel(m, keep)
	budPos, budNeg := splitBudget(o.Budget, len(pos), len(neg))
	clusterPos := budPos > 0 && len(pos) > budPos
	clusterNeg := budNeg > 0 && len(neg) > budNeg
	if !clusterPos && !clusterNeg {
		// Within budget: the surviving SVs carry over verbatim (original
		// storage kind preserved by Subset).
		cm := &model.Model{
			Kernel: m.Kernel, SVX: m.SVX.Subset(keep),
			SVY: make([]float64, len(keep)), Alpha: make([]float64, len(keep)),
			B: m.B, Fallback: m.Fallback,
		}
		for t, i := range keep {
			cm.SVY[t] = m.SVY[i]
			cm.Alpha[t] = m.Alpha[i]
		}
		st.SVAfter = cm.NSV()
		return cm, st
	}

	// Clustering densifies: centroids are dense means, and mixing one dense
	// class with one sparse class in a single SV matrix is not possible.
	st.Clustered = true
	n := m.SVX.Features()
	var rows []float64
	// Positive class first, then negative: a fixed order keeps the output
	// deterministic and the per-class RNG consumption stable.
	rows = appendClassCentroids(m, pos, budPos, maxIter, rng, rows)
	rows = appendClassCentroids(m, neg, budNeg, maxIter, rng, rows)
	z := la.NewDense(len(rows)/n, n, rows)

	// Reduced-set weights: rather than summing member α (which ignores how
	// much the kernel blurs neighbouring centroids), fit w to minimise
	// ‖Σᵢ αᵢyᵢ φ(xᵢ) − Σ_c w_c φ(z_c)‖² in the RKHS — the normal equations
	// are K_zz·w = K_zx·(αy), a tiny SPD solve at the centroid budget.
	w := reducedSetWeights(m, z)
	var svy, alpha []float64
	var kept []int
	for c, wc := range w {
		if wc == 0 {
			continue // a centroid the fit assigns no mass (e.g. empty cluster)
		}
		kept = append(kept, c)
		if wc > 0 {
			svy, alpha = append(svy, 1), append(alpha, wc)
		} else {
			svy, alpha = append(svy, -1), append(alpha, -wc)
		}
	}
	cm := &model.Model{
		Kernel: m.Kernel, SVX: z.Subset(kept),
		SVY: svy, Alpha: alpha, B: m.B, Fallback: m.Fallback,
	}
	st.SVAfter = cm.NSV()
	return cm, st
}

// appendClassCentroids appends one class's reduced vectors (densified): the
// raw SVs when within budget, otherwise K-means centroids.
func appendClassCentroids(m *model.Model, idx []int, budget int, maxIter int, rng *rand.Rand, rows []float64) []float64 {
	if len(idx) == 0 {
		return rows
	}
	n := m.SVX.Features()
	if budget <= 0 || len(idx) <= budget {
		buf := make([]float64, n)
		for _, i := range idx {
			rows = append(rows, m.SVX.RowInto(i, buf)...)
		}
		return rows
	}
	sub := m.SVX.Subset(idx)
	res := kmeans.Run(sub, kmeans.Seed(sub, budget, rng), 0, maxIter)
	for c := 0; c < budget; c++ {
		rows = append(rows, res.Centers.DenseRow(c)...)
	}
	return rows
}

// reducedSetWeights solves the ridge-stabilised normal equations
// (K_zz + λI)·w = K_zx·(αy) for the centroid weights. K_zz is symmetric
// positive semi-definite for the kernels in use; a tiny relative ridge
// keeps the Cholesky factorisation stable when centroids nearly coincide.
func reducedSetWeights(m *model.Model, z *la.Matrix) []float64 {
	nz := z.Rows()
	k := m.Kernel
	kzz := make([]float64, nz*nz)
	for i := 0; i < nz; i++ {
		for j := i; j < nz; j++ {
			v := k.Eval(z, i, z, j)
			kzz[i*nz+j] = v
			kzz[j*nz+i] = v
		}
	}
	// λ scaled to the mean diagonal so the ridge is dimensionless.
	trace := 0.0
	for i := 0; i < nz; i++ {
		trace += kzz[i*nz+i]
	}
	lambda := 1e-8 * trace / float64(nz)
	for i := 0; i < nz; i++ {
		kzz[i*nz+i] += lambda
	}
	rhs := make([]float64, nz)
	for c := 0; c < nz; c++ {
		var s float64
		for i := 0; i < m.NSV(); i++ {
			s += m.Alpha[i] * m.SVY[i] * k.Eval(m.SVX, i, z, c)
		}
		rhs[c] = s
	}
	if !cholSolve(kzz, rhs, nz) {
		// Factorisation failed despite the ridge (degenerate kernel):
		// fall back to the raw projection, which is always usable.
		return rhs
	}
	return rhs
}

// cholSolve solves A·x = b in place (b becomes x) for symmetric positive
// definite A (n×n row-major, clobbered). Returns false if a pivot is not
// strictly positive.
func cholSolve(a, b []float64, n int) bool {
	// A = L·Lᵀ, L lower-triangular stored in a.
	for j := 0; j < n; j++ {
		d := a[j*n+j]
		for k := 0; k < j; k++ {
			d -= a[j*n+k] * a[j*n+k]
		}
		if d <= 0 {
			return false
		}
		d = math.Sqrt(d)
		a[j*n+j] = d
		for i := j + 1; i < n; i++ {
			s := a[i*n+j]
			for k := 0; k < j; k++ {
				s -= a[i*n+k] * a[j*n+k]
			}
			a[i*n+j] = s / d
		}
	}
	// Forward substitution L·y = b.
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= a[i*n+k] * b[k]
		}
		b[i] = s / a[i*n+i]
	}
	// Back substitution Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= a[k*n+i] * b[k]
		}
		b[i] = s / a[i*n+i]
	}
	return true
}

// pruneIdx returns the surviving SV indices under the α threshold, always
// retaining each class's largest-α vector.
func pruneIdx(m *model.Model, frac float64) []int {
	if frac <= 0 {
		idx := make([]int, m.NSV())
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	maxA := 0.0
	bestPos, bestNeg := -1, -1
	for i, a := range m.Alpha {
		maxA = math.Max(maxA, a)
		if m.SVY[i] > 0 && (bestPos < 0 || a > m.Alpha[bestPos]) {
			bestPos = i
		}
		if m.SVY[i] < 0 && (bestNeg < 0 || a > m.Alpha[bestNeg]) {
			bestNeg = i
		}
	}
	cut := frac * maxA
	keep := make([]int, 0, m.NSV())
	for i, a := range m.Alpha {
		if a >= cut || i == bestPos || i == bestNeg {
			keep = append(keep, i)
		}
	}
	return keep
}

// splitByLabel partitions the kept indices by their ±1 label.
func splitByLabel(m *model.Model, keep []int) (pos, neg []int) {
	for _, i := range keep {
		if m.SVY[i] > 0 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	return pos, neg
}

// splitBudget divides the centroid budget between the classes in proportion
// to their SV counts, guaranteeing each non-empty class at least one slot.
func splitBudget(budget, npos, nneg int) (int, int) {
	if budget <= 0 {
		return 0, 0
	}
	if npos == 0 {
		return 0, budget
	}
	if nneg == 0 {
		return budget, 0
	}
	if budget < 2 {
		budget = 2 // both classes present: never collapse one to zero
	}
	bp := budget * npos / (npos + nneg)
	if bp < 1 {
		bp = 1
	}
	if bp > budget-1 {
		bp = budget - 1
	}
	return bp, budget - bp
}
