package compress_test

import (
	"bytes"
	"math/rand"
	"strconv"
	"testing"

	"casvm/internal/compress"
	"casvm/internal/core"
	"casvm/internal/data"
	"casvm/internal/kernel"
	"casvm/internal/la"
	"casvm/internal/model"
)

// trainFace trains the face-like dataset once per test binary; every golden
// figure below derives from this one deterministic run (DefaultParams seeds
// the solver, the registry spec seeds the data).
var faceCache struct {
	ds   *data.Dataset
	set  *model.Set
	done bool
}

func trainFace(t *testing.T) (*data.Dataset, *model.Set) {
	t.Helper()
	if faceCache.done {
		return faceCache.ds, faceCache.set
	}
	ds, entry, err := data.Load("face", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams(core.MethodRACA, 8)
	p.Kernel = kernel.RBF(entry.GammaOrDefault())
	out, err := core.Train(ds.X, ds.Y, p)
	if err != nil {
		t.Fatal(err)
	}
	faceCache.ds, faceCache.set, faceCache.done = ds, out.Set, true
	return ds, out.Set
}

const goldenBudget = 32
const goldenPrune = 0.01
const goldenSeed = 7

// TestGoldenCompressedAccuracy is the acceptance gate for the compression
// pass: centroid-budgeted + α-pruned models lose at most one point of
// accuracy on the face-like dataset against the full model, while cutting
// the support-vector count to the budget.
func TestGoldenCompressedAccuracy(t *testing.T) {
	ds, full := trainFace(t)
	small, st, err := compress.Set(full, compress.Options{
		Budget: goldenBudget, PruneFrac: goldenPrune, Seed: goldenSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	fullAcc, compAcc := compress.Annotate(small, full, ds.TestX, ds.TestY)
	t.Logf("face: full acc=%.4f (%d SVs) compressed acc=%.4f (%d SVs, ratio %.3f)",
		fullAcc, st.SVBefore, compAcc, st.SVAfter, st.Ratio())
	if fullAcc < 0.9 {
		t.Fatalf("full model accuracy %v suspiciously low; the fixture regressed", fullAcc)
	}
	if compAcc < fullAcc-0.01 {
		t.Fatalf("compressed accuracy %v lost more than 1%% vs full %v", compAcc, fullAcc)
	}
	for j, m := range small.Models {
		if m.NSV() > goldenBudget {
			t.Fatalf("model %d has %d SVs, budget %d", j, m.NSV(), goldenBudget)
		}
	}
	if st.SVAfter >= st.SVBefore {
		t.Fatalf("compression did not reduce: %d → %d SVs", st.SVBefore, st.SVAfter)
	}
	// The measured delta is embedded in the model metadata, so a serving
	// layer loading this file can surface the trade-off it is making.
	delta, err := strconv.ParseFloat(small.Meta["accuracy_delta"], 64)
	if err != nil || delta != fullAcc-compAcc {
		t.Fatalf("accuracy_delta meta %q (err %v), want %v", small.Meta["accuracy_delta"], err, fullAcc-compAcc)
	}
	if small.Meta["compress_budget"] != strconv.Itoa(goldenBudget) {
		t.Fatalf("compress_budget meta %q", small.Meta["compress_budget"])
	}
}

// TestCompressionDeterministic pins determinism: the same budget and seed
// produce a bit-identical reduced model (same ModelHash), and the hash
// survives a save/load round trip.
func TestCompressionDeterministic(t *testing.T) {
	_, full := trainFace(t)
	opts := compress.Options{Budget: goldenBudget, PruneFrac: goldenPrune, Seed: goldenSeed}
	a, _, err := compress.Set(full, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := compress.Set(full, opts)
	if err != nil {
		t.Fatal(err)
	}
	ha, err := core.ModelHash(a)
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := core.ModelHash(b)
	if ha != hb {
		t.Fatalf("same budget+seed produced different models: %s vs %s", ha, hb)
	}
	var buf bytes.Buffer
	if err := model.SaveSet(&buf, a); err != nil {
		t.Fatal(err)
	}
	loaded, err := model.LoadSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	hl, err := core.ModelHash(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if hl != ha {
		t.Fatalf("hash changed across save/load: %s vs %s", hl, ha)
	}
	// A different seed moves the K-means initialisation and must move the
	// hash (otherwise the seed is not actually plumbed through).
	other := opts
	other.Seed++
	c, _, err := compress.Set(full, other)
	if err != nil {
		t.Fatal(err)
	}
	if hc, _ := core.ModelHash(c); hc == ha {
		t.Fatal("different seed produced an identical model")
	}
}

// TestPruneOnly covers the budget-free path: pruning keeps the original
// storage kind, never empties a class, and a zero-option pass is the
// identity on SV counts.
func TestPruneOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 6
	nsv := 40
	buf := make([]float64, nsv*n)
	for i := range buf {
		buf[i] = rng.NormFloat64()
	}
	m := &model.Model{
		Kernel: kernel.RBF(0.5), SVX: la.NewDense(nsv, n, buf),
		SVY: make([]float64, nsv), Alpha: make([]float64, nsv), B: 0.1, Fallback: 1,
	}
	for i := 0; i < nsv; i++ {
		m.SVY[i] = float64(2*(i%2) - 1)
		m.Alpha[i] = 1e-6 // everything prunable...
	}
	m.Alpha[0] = 1.0 // ...except the class maxima
	m.Alpha[1] = 0.9
	s := model.Single(m, make([]float64, n))

	id, st, err := compress.Set(s, compress.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.SVAfter != nsv || id.Models[0].NSV() != nsv {
		t.Fatalf("zero options changed SV count: %+v", st)
	}

	pruned, st, err := compress.Set(s, compress.Options{PruneFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	got := pruned.Models[0]
	if got.NSV() != 2 {
		t.Fatalf("want 2 survivors (one per class), got %d", got.NSV())
	}
	if got.SVY[0]+got.SVY[1] != 0 {
		t.Fatalf("want one survivor per class, got labels %v", got.SVY)
	}
	if got.SVX.Sparse() {
		t.Fatal("prune-only pass changed storage kind")
	}
	if st.PerModel[0].Clustered {
		t.Fatal("prune-only pass reported clustering")
	}
}

// TestCompressEmptyAndTinyModels covers SV-less models (single-class
// partitions) and models already under budget.
func TestCompressEmptyAndTinyModels(t *testing.T) {
	n := 4
	x := la.NewDense(3, n, []float64{1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0})
	empty := model.FromSolution(x, []float64{1, 1, 1}, []float64{0, 0, 0}, 0, kernel.RBF(1))
	tiny := model.FromSolution(x, []float64{1, -1, 1}, []float64{0.5, 0.5, 0}, 0.1, kernel.RBF(1))
	s := &model.Set{Models: []*model.Model{empty, tiny}, Centers: la.Zeros(2, n)}
	out, st, err := compress.Set(s, compress.Options{Budget: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if out.Models[0].NSV() != 0 || out.Models[0].Fallback != empty.Fallback {
		t.Fatalf("empty model mangled: nsv=%d fallback=%v", out.Models[0].NSV(), out.Models[0].Fallback)
	}
	if out.Models[1].NSV() != 2 {
		t.Fatalf("under-budget model reclustered: nsv=%d", out.Models[1].NSV())
	}
	if st.SVBefore != 2 || st.SVAfter != 2 {
		t.Fatalf("stats %+v", st)
	}
	// Invalid options are rejected, not silently clamped.
	if _, _, err := compress.Set(s, compress.Options{Budget: -1}); err == nil {
		t.Fatal("negative budget accepted")
	}
	if _, _, err := compress.Set(s, compress.Options{PruneFrac: 1}); err == nil {
		t.Fatal("prune frac 1 accepted")
	}
}
