// Package critpath builds the happens-before DAG of a traced run — each
// rank's virtual-clock segment tiling plus the cross-rank flow edges — and
// extracts its critical path: the single dependency chain that determines
// the virtual makespan. The chain's time decomposes exactly into the four
// α–β buckets of the paper's analysis: computation (tc·flops), latency
// (ts per message), bandwidth (tw·bytes), and imbalance wait (idle time
// not explained by any in-flight message). Because every attribution step
// is a telescoping difference of clock values, the buckets sum to the
// makespan to float round-off.
//
// The same structures support what-if re-costing (Recost): replaying the
// DAG with scaled tc/ts/tw predicts the makespan and the winning algorithm
// on a machine with a different balance, without re-running training.
package critpath

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"casvm/internal/trace"
)

// Input is the causal record critpath consumes: per-rank virtual-time
// segment tilings (index = rank, each in clock order) and the delivered
// flow edges keyed by id.
type Input struct {
	Segments [][]trace.Segment
	Edges    map[int64]trace.FlowEdge
}

// FromTimeline assembles the Input from a live timeline (after the
// recording goroutines have finished).
func FromTimeline(tl *trace.Timeline) Input {
	return fromParts(tl.Segments(), tl.FlowEdges())
}

// FromExtra assembles the Input from the casvm section of an exported
// trace file; the float64 JSON round trip is exact, so analyses from file
// and from the live timeline agree bitwise.
func FromExtra(x *trace.TraceExtra) Input {
	if x == nil {
		return Input{}
	}
	return fromParts(x.Segments, x.Edges)
}

func fromParts(segs [][]trace.Segment, edges []trace.FlowEdge) Input {
	m := make(map[int64]trace.FlowEdge, len(edges))
	for _, e := range edges {
		m[e.ID] = e
	}
	return Input{Segments: segs, Edges: m}
}

// Step is one attribution on the critical path: AttrSec of the makespan
// charged to Kind on Rank during [Start, End). Steps are produced by the
// backward walk, so they are ordered from the makespan back toward t=0.
type Step struct {
	Rank    int           `json:"rank"`
	Kind    trace.SegKind `json:"-"`
	KindStr string        `json:"kind"`
	Phase   string        `json:"phase,omitempty"`
	Start   float64       `json:"start_s"`
	End     float64       `json:"end_s"`
	AttrSec float64       `json:"attr_s"`
	EdgeID  int64         `json:"edge_id,omitempty"`
}

// PhaseSplit is the four-bucket decomposition of one algorithm phase's
// share of the critical path.
type PhaseSplit struct {
	Phase        string  `json:"phase"`
	CompSec      float64 `json:"comp_s"`
	LatencySec   float64 `json:"latency_s"`
	BandwidthSec float64 `json:"bandwidth_s"`
	WaitSec      float64 `json:"wait_s"`
}

// TotalSec returns the phase's critical-path share.
func (p PhaseSplit) TotalSec() float64 {
	return p.CompSec + p.LatencySec + p.BandwidthSec + p.WaitSec
}

// Analysis is the critical path of one run.
type Analysis struct {
	MakespanSec float64 `json:"makespan_s"`
	EndRank     int     `json:"end_rank"`

	CompSec      float64 `json:"comp_s"`
	LatencySec   float64 `json:"latency_s"`
	BandwidthSec float64 `json:"bandwidth_s"`
	WaitSec      float64 `json:"wait_s"`

	// Hops counts cross-rank transitions; Steps the attribution steps.
	Hops  int `json:"hops"`
	Steps int `json:"steps"`

	Phases []PhaseSplit `json:"phases,omitempty"`

	steps []Step
}

// Sum returns the four buckets' total — equal to MakespanSec up to float
// round-off (the acceptance invariant).
func (a *Analysis) Sum() float64 {
	return a.CompSec + a.LatencySec + a.BandwidthSec + a.WaitSec
}

// Path returns the full attribution walk, from the makespan backward.
func (a *Analysis) Path() []Step { return a.steps }

// TopSteps returns the k largest attribution steps, descending.
func (a *Analysis) TopSteps(k int) []Step {
	out := append([]Step{}, a.steps...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].AttrSec > out[j].AttrSec })
	if k >= 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// Report converts the analysis into the run-report form.
func (a *Analysis) Report() *trace.CritPathReport {
	r := &trace.CritPathReport{
		MakespanSec:  a.MakespanSec,
		EndRank:      a.EndRank,
		CompSec:      a.CompSec,
		LatencySec:   a.LatencySec,
		BandwidthSec: a.BandwidthSec,
		WaitSec:      a.WaitSec,
		Hops:         a.Hops,
		Steps:        a.Steps,
	}
	for _, p := range a.Phases {
		r.Phases = append(r.Phases, trace.CritPathPhase{
			Phase:        p.Phase,
			CompSec:      p.CompSec,
			LatencySec:   p.LatencySec,
			BandwidthSec: p.BandwidthSec,
			WaitSec:      p.WaitSec,
		})
	}
	return r
}

// Analyze walks the happens-before DAG backward from the rank whose
// tiling ends last. At each point (rank, t) the controlling segment is
// the last one starting before t:
//
//   - comp/latency/bandwidth: attribute t−Start to the segment's bucket
//     and continue at Start on the same rank;
//   - wait with a resolvable edge: attribute t−SendVirtSec (the injected
//     network delay, usually 0) to latency and hop to the sender at its
//     send-completion time;
//   - wait without an edge, or a gap in the tiling (dropped segments):
//     attribute the idle span to wait and continue locally.
//
// Every step attributes exactly the clock distance it moves, so the four
// buckets telescope to the makespan.
func Analyze(in Input) (*Analysis, error) {
	a := &Analysis{EndRank: -1}
	var totalSegs int
	for r, segs := range in.Segments {
		totalSegs += len(segs)
		if n := len(segs); n > 0 && segs[n-1].End > a.MakespanSec {
			a.MakespanSec = segs[n-1].End
			a.EndRank = r
		}
	}
	if a.EndRank < 0 {
		return a, nil
	}

	phases := map[string]int{}
	bucket := func(kind trace.SegKind, phase string, d float64) {
		switch kind {
		case trace.SegComp:
			a.CompSec += d
		case trace.SegLatency:
			a.LatencySec += d
		case trace.SegBandwidth:
			a.BandwidthSec += d
		default:
			a.WaitSec += d
		}
		i, ok := phases[phase]
		if !ok {
			i = len(a.Phases)
			phases[phase] = i
			a.Phases = append(a.Phases, PhaseSplit{Phase: phase})
		}
		p := &a.Phases[i]
		switch kind {
		case trace.SegComp:
			p.CompSec += d
		case trace.SegLatency:
			p.LatencySec += d
		case trace.SegBandwidth:
			p.BandwidthSec += d
		default:
			p.WaitSec += d
		}
	}
	step := func(rank int, kind trace.SegKind, phase string, start, t float64, edgeID int64) {
		d := t - start
		if d < 0 {
			d = 0
		}
		bucket(kind, phase, d)
		a.steps = append(a.steps, Step{Rank: rank, Kind: kind, KindStr: kind.String(),
			Phase: phase, Start: start, End: t, AttrSec: d, EdgeID: edgeID})
	}

	// Strict progress: every iteration either moves t down or follows one
	// flow edge, and happens-before admits no cycles; the guard only
	// trips on a corrupted trace.
	maxSteps := 2*totalSegs + 2*len(in.Edges) + 64
	r, t := a.EndRank, a.MakespanSec
	for t > 0 {
		if len(a.steps) >= maxSteps {
			return nil, fmt.Errorf("critpath: walk exceeded %d steps at rank %d t=%g (corrupted trace?)", maxSteps, r, t)
		}
		segs := in.Segments[r]
		// Last segment with Start < t; zero-length segments at exactly t
		// are naturally skipped.
		i := sort.Search(len(segs), func(i int) bool { return segs[i].Start >= t }) - 1
		if i < 0 {
			// Leading idle: nothing recorded on this rank before t.
			step(r, trace.SegWait, "", 0, t, 0)
			break
		}
		seg := segs[i]
		if seg.End < t {
			// Gap in the tiling (dropped segments): count it as wait and
			// land on the segment's end.
			step(r, trace.SegWait, seg.Phase, seg.End, t, 0)
			t = seg.End
			continue
		}
		if seg.Kind == trace.SegWait {
			if e, ok := in.Edges[seg.EdgeID]; ok && seg.EdgeID != 0 && t >= e.SendVirtSec {
				// The wait ended because this message arrived: charge the
				// post-send network delay to latency and hop to the
				// sender's completion point.
				if t > e.SendVirtSec {
					step(r, trace.SegLatency, seg.Phase, e.SendVirtSec, t, seg.EdgeID)
				}
				a.Hops++
				r, t = e.Src, e.SendVirtSec
				continue
			}
			step(r, trace.SegWait, seg.Phase, seg.Start, t, seg.EdgeID)
			t = seg.Start
			continue
		}
		step(r, seg.Kind, seg.Phase, seg.Start, t, seg.EdgeID)
		t = seg.Start
	}
	a.Steps = len(a.steps)
	sort.SliceStable(a.Phases, func(i, j int) bool {
		return a.Phases[i].TotalSec() > a.Phases[j].TotalSec()
	})
	return a, nil
}

// Factors scales the three machine constants for what-if re-costing:
// every comp segment's duration is multiplied by Tc, every latency
// segment (and injected delay) by Ts, every bandwidth segment by Tw.
// The zero value of a field means "unchanged" after ParseFactors; use
// One() for the identity.
type Factors struct {
	Tc float64
	Ts float64
	Tw float64
}

// One returns the identity re-costing.
func One() Factors { return Factors{Tc: 1, Ts: 1, Tw: 1} }

// ParseFactors parses a what-if spec like "tw=0.5x,ts=2" (the trailing
// "x" is optional). Unmentioned factors stay 1.
func ParseFactors(spec string) (Factors, error) {
	f := One()
	if strings.TrimSpace(spec) == "" {
		return f, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return f, fmt.Errorf("critpath: bad what-if term %q (want name=factor)", part)
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(kv[1]), "x"), 64)
		if err != nil {
			return f, fmt.Errorf("critpath: bad factor in %q: %v", part, err)
		}
		if v < 0 {
			return f, fmt.Errorf("critpath: negative factor in %q", part)
		}
		switch strings.ToLower(strings.TrimSpace(kv[0])) {
		case "tc":
			f.Tc = v
		case "ts":
			f.Ts = v
		case "tw":
			f.Tw = v
		default:
			return f, fmt.Errorf("critpath: unknown machine constant %q (want tc, ts or tw)", kv[0])
		}
	}
	return f, nil
}

// Recost replays the happens-before DAG under scaled machine constants
// and returns the re-timed Input (analyze it with Analyze for the
// predicted makespan and split). The replay is a deterministic worklist
// simulation: each rank processes its segments in order; a wait segment
// blocks until its sender's bandwidth segment has been replayed, then
// resynchronizes to the new arrival time (send completion plus the
// original injected delay scaled by Ts).
func Recost(in Input, f Factors) (Input, error) {
	p := len(in.Segments)
	out := Input{Segments: make([][]trace.Segment, p), Edges: make(map[int64]trace.FlowEdge, len(in.Edges))}
	idx := make([]int, p)
	clock := make([]float64, p)
	sendAt := make(map[int64]float64, len(in.Edges))

	emit := func(r int, seg trace.Segment, start, end float64) {
		seg.Start, seg.End = start, end
		out.Segments[r] = append(out.Segments[r], seg)
	}

	for {
		progress := false
		remaining := false
		for r := 0; r < p; r++ {
			segs := in.Segments[r]
			for idx[r] < len(segs) {
				seg := segs[idx[r]]
				switch seg.Kind {
				case trace.SegComp:
					start := clock[r]
					clock[r] = start + seg.Dur()*f.Tc
					emit(r, seg, start, clock[r])
				case trace.SegLatency:
					start := clock[r]
					clock[r] = start + seg.Dur()*f.Ts
					emit(r, seg, start, clock[r])
				case trace.SegBandwidth:
					start := clock[r]
					clock[r] = start + seg.Dur()*f.Tw
					emit(r, seg, start, clock[r])
					if seg.EdgeID != 0 {
						sendAt[seg.EdgeID] = clock[r]
					}
				case trace.SegWait:
					e, haveEdge := in.Edges[seg.EdgeID]
					if haveEdge {
						done, sent := sendAt[seg.EdgeID]
						if !sent {
							// Sender hasn't been replayed this far yet.
							goto blocked
						}
						delay := seg.End - e.SendVirtSec // original injected delay ≥ 0
						if delay < 0 {
							delay = 0
						}
						arrival := done + delay*f.Ts
						start := clock[r]
						if arrival > clock[r] {
							clock[r] = arrival
						}
						emit(r, seg, start, clock[r])
						ne := e
						ne.SendVirtSec = done
						ne.RecvVirtSec = clock[r]
						ne.LatencySec = e.LatencySec * f.Ts
						ne.BandwidthSec = e.BandwidthSec * f.Tw
						out.Edges[seg.EdgeID] = ne
					} else {
						// Unresolvable wait (dropped edge, or a wait on an
						// untraced/self message): replay the original idle
						// span unscaled.
						start := clock[r]
						clock[r] = start + seg.Dur()
						emit(r, seg, start, clock[r])
					}
				}
				idx[r]++
				progress = true
			}
		blocked:
			if idx[r] < len(segs) {
				remaining = true
			}
		}
		if !remaining {
			return out, nil
		}
		if !progress {
			return out, fmt.Errorf("critpath: recost deadlocked (incomplete trace: a wait's sender was never replayed)")
		}
	}
}
