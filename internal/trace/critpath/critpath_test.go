package critpath

import (
	"math"
	"testing"

	"casvm/internal/trace"
)

// handDAG builds a two-rank trace with a known critical path:
//
//	rank 0: comp [0,2] → latency [2,2.5] → bandwidth [2.5,4] → comp [4,5]
//	rank 1: comp [0,1] → wait [1,4] (on edge 1) → comp [4,7]
//
// Edge 1 goes 0→1, send completes at 4, delivered at 4 (no delay). The
// critical path ends on rank 1 at t=7 and decomposes as comp 5 (3 on
// rank 1 + 2 on rank 0), latency 0.5, bandwidth 1.5, wait 0, with one hop.
func handDAG() Input {
	seg := func(k trace.SegKind, s, e float64, id int64, ph string) trace.Segment {
		return trace.Segment{Kind: k, Start: s, End: e, EdgeID: id, Phase: ph}
	}
	return Input{
		Segments: [][]trace.Segment{
			{
				seg(trace.SegComp, 0, 2, 0, "partition"),
				seg(trace.SegLatency, 2, 2.5, 1, "solve"),
				seg(trace.SegBandwidth, 2.5, 4, 1, "solve"),
				seg(trace.SegComp, 4, 5, 0, "solve"),
			},
			{
				seg(trace.SegComp, 0, 1, 0, "partition"),
				seg(trace.SegWait, 1, 4, 1, "solve"),
				seg(trace.SegComp, 4, 7, 0, "solve"),
			},
		},
		Edges: map[int64]trace.FlowEdge{
			1: {ID: 1, Src: 0, Dst: 1, Bytes: 9000, SendVirtSec: 4, RecvVirtSec: 4,
				LatencySec: 0.5, BandwidthSec: 1.5},
		},
	}
}

func TestAnalyzeHandDAG(t *testing.T) {
	a, err := Analyze(handDAG())
	if err != nil {
		t.Fatal(err)
	}
	if a.MakespanSec != 7 || a.EndRank != 1 {
		t.Fatalf("makespan %v on rank %d, want 7 on rank 1", a.MakespanSec, a.EndRank)
	}
	if a.CompSec != 5 || a.LatencySec != 0.5 || a.BandwidthSec != 1.5 || a.WaitSec != 0 {
		t.Fatalf("split comp=%v lat=%v bw=%v wait=%v, want 5/0.5/1.5/0",
			a.CompSec, a.LatencySec, a.BandwidthSec, a.WaitSec)
	}
	if a.Hops != 1 {
		t.Fatalf("hops=%d, want 1", a.Hops)
	}
	if math.Abs(a.Sum()-a.MakespanSec) > 1e-9 {
		t.Fatalf("decomposition sum %v != makespan %v", a.Sum(), a.MakespanSec)
	}
	// Phase split: "solve" carries 3+0.5+1.5 = 5 (rank 1 comp + the α–β
	// cost of the edge), "partition" carries rank 0's first comp block.
	want := map[string][4]float64{
		"solve":     {3, 0.5, 1.5, 0}, // rank 0's post-send comp [4,5] is off-path
		"partition": {2, 0, 0, 0},
	}
	for _, p := range a.Phases {
		w, ok := want[p.Phase]
		if !ok {
			t.Fatalf("unexpected phase %q", p.Phase)
		}
		if p.CompSec != w[0] || p.LatencySec != w[1] || p.BandwidthSec != w[2] || p.WaitSec != w[3] {
			t.Fatalf("phase %q split %v/%v/%v/%v, want %v", p.Phase,
				p.CompSec, p.LatencySec, p.BandwidthSec, p.WaitSec, w)
		}
	}
	// The largest single attribution is rank 1's final comp block.
	top := a.TopSteps(1)
	if len(top) != 1 || top[0].AttrSec != 3 || top[0].Rank != 1 || top[0].Kind != trace.SegComp {
		t.Fatalf("top step: %+v", top)
	}
}

// TestAnalyzeInjectedDelay: a message delivered later than its send
// completion (fault-injected latency) charges the gap to the latency
// bucket and still hops to the sender.
func TestAnalyzeInjectedDelay(t *testing.T) {
	in := handDAG()
	in.Segments[1][1].End = 4.5 // wait extends to the delayed arrival
	in.Segments[1][2] = trace.Segment{Kind: trace.SegComp, Start: 4.5, End: 7.5, Phase: "solve"}
	e := in.Edges[1]
	e.RecvVirtSec = 4.5
	in.Edges[1] = e

	a, err := Analyze(in)
	if err != nil {
		t.Fatal(err)
	}
	if a.MakespanSec != 7.5 {
		t.Fatalf("makespan %v, want 7.5", a.MakespanSec)
	}
	if a.LatencySec != 1.0 { // 0.5 ts + 0.5 injected delay
		t.Fatalf("latency %v, want 1.0", a.LatencySec)
	}
	if a.Hops != 1 || math.Abs(a.Sum()-a.MakespanSec) > 1e-9 {
		t.Fatalf("hops=%d sum=%v makespan=%v", a.Hops, a.Sum(), a.MakespanSec)
	}
}

// TestAnalyzeUnresolvableWait: a wait whose edge is missing (dropped
// buffers) falls back to the wait bucket instead of failing.
func TestAnalyzeUnresolvableWait(t *testing.T) {
	in := handDAG()
	delete(in.Edges, 1)
	a, err := Analyze(in)
	if err != nil {
		t.Fatal(err)
	}
	if a.WaitSec != 3 { // the whole wait segment, no hop possible
		t.Fatalf("wait %v, want 3", a.WaitSec)
	}
	if a.Hops != 0 || math.Abs(a.Sum()-a.MakespanSec) > 1e-9 {
		t.Fatalf("hops=%d sum=%v makespan=%v", a.Hops, a.Sum(), a.MakespanSec)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a, err := Analyze(Input{})
	if err != nil {
		t.Fatal(err)
	}
	if a.MakespanSec != 0 || a.Steps != 0 {
		t.Fatalf("empty input: %+v", a)
	}
}

// TestRecostHalvedBandwidth replays the DAG with tw halved: rank 0's
// bandwidth segment shrinks from 1.5 to 0.75, the message arrives at 3.25,
// and rank 1 finishes at 6.25.
func TestRecostHalvedBandwidth(t *testing.T) {
	out, err := Recost(handDAG(), Factors{Tc: 1, Ts: 1, Tw: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(out)
	if err != nil {
		t.Fatal(err)
	}
	if a.MakespanSec != 6.25 {
		t.Fatalf("re-costed makespan %v, want 6.25", a.MakespanSec)
	}
	if a.CompSec != 5 || a.LatencySec != 0.5 || a.BandwidthSec != 0.75 || a.WaitSec != 0 {
		t.Fatalf("re-costed split comp=%v lat=%v bw=%v wait=%v, want 5/0.5/0.75/0",
			a.CompSec, a.LatencySec, a.BandwidthSec, a.WaitSec)
	}
	if math.Abs(a.Sum()-a.MakespanSec) > 1e-9 {
		t.Fatalf("sum %v != makespan %v", a.Sum(), a.MakespanSec)
	}
}

// TestRecostIdentity: the identity factors reproduce the original timing
// exactly.
func TestRecostIdentity(t *testing.T) {
	in := handDAG()
	out, err := Recost(in, One())
	if err != nil {
		t.Fatal(err)
	}
	want, err := Analyze(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Analyze(out)
	if err != nil {
		t.Fatal(err)
	}
	if got.MakespanSec != want.MakespanSec || got.Sum() != want.Sum() {
		t.Fatalf("identity recost changed the analysis: %+v vs %+v", got, want)
	}
}

// TestRecostDeadlockDetected: a wait on an edge whose sender segments are
// missing must error, not hang.
func TestRecostDeadlockDetected(t *testing.T) {
	in := handDAG()
	in.Segments[0] = nil // sender's history gone; rank 1's wait can never resolve
	if _, err := Recost(in, One()); err == nil {
		t.Fatal("want deadlock error for incomplete trace")
	}
}

func TestParseFactors(t *testing.T) {
	f, err := ParseFactors("tw=0.5x, ts=2")
	if err != nil {
		t.Fatal(err)
	}
	if f.Tc != 1 || f.Ts != 2 || f.Tw != 0.5 {
		t.Fatalf("parsed %+v", f)
	}
	if _, err := ParseFactors("tq=1"); err == nil {
		t.Fatal("want error for unknown constant")
	}
	if _, err := ParseFactors("tw"); err == nil {
		t.Fatal("want error for missing value")
	}
	if _, err := ParseFactors("tw=-1"); err == nil {
		t.Fatal("want error for negative factor")
	}
	if f, err = ParseFactors(""); err != nil || f != One() {
		t.Fatalf("empty spec: %v %+v", err, f)
	}
}
