package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// The Chrome trace_event JSON object format, as consumed by
// chrome://tracing and Perfetto's legacy importer: a top-level object with
// a "traceEvents" array of events. Each rank renders as one thread
// (tid = rank) of a single process, named via "M" metadata events; spans
// are "X" (complete) events with microsecond timestamps, instants are "i".
// Virtual-clock seconds and modeled flops ride along in "args", where both
// viewers display them in the selection panel.
//
// Cross-rank message deliveries additionally export as flow events: a
// ph:"s" (flow start) on the sender's lane paired with a ph:"f" (flow end,
// bp:"e" = bind to enclosing slice) on the receiver's, sharing a numeric
// id — Perfetto draws these as arrows between rank lanes. The exact
// virtual-time record (segments + edges) rides under the top-level "casvm"
// key, which both viewers ignore; ReadTraceExtra recovers it bit-exactly
// for offline critical-path analysis (cmd/casvm-profile).

// chromeEvent is one trace_event entry.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`  // instant scope: "t" = thread
	ID    int64          `json:"id,omitempty"` // flow-event binding id
	BP    string         `json:"bp,omitempty"` // flow binding point: "e" on ph:"f"
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	Casvm           *TraceExtra   `json:"casvm,omitempty"`
}

// WriteChromeTrace serializes the timeline as Chrome trace_event JSON.
// Timestamps are rebased so the earliest event starts at t=0, keeping the
// viewer's time axis readable.
func (t *Timeline) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	flows := t.FlowEdges()
	var base int64
	if len(events) > 0 {
		base = events[0].WallStartNs
	}
	for _, f := range flows {
		if f.SendWallNs != 0 && (base == 0 || f.SendWallNs < base) {
			base = f.SendWallNs
		}
	}
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}, Casvm: t.Extra()}
	seen := map[int]bool{}
	name := func(rank int) {
		if seen[rank] {
			return
		}
		seen[rank] = true
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: rank,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", rank)},
		})
	}
	for _, e := range events {
		name(e.Rank)
		ce := chromeEvent{
			Name: e.Name,
			Cat:  e.Cat,
			Ts:   float64(e.WallStartNs-base) / 1e3,
			Pid:  0,
			Tid:  e.Rank,
		}
		if e.Instant {
			ce.Ph = "i"
			ce.Scope = "t"
		} else {
			ce.Ph = "X"
			ce.Dur = float64(e.WallDurNs) / 1e3
			args := map[string]any{}
			if e.VirtDurSec != 0 || e.VirtStartSec != 0 {
				args["virt_start_s"] = e.VirtStartSec
				args["virt_dur_s"] = e.VirtDurSec
			}
			if e.Flops != 0 {
				args["flops"] = e.Flops
			}
			if len(args) > 0 {
				ce.Args = args
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	for _, f := range flows {
		name(f.Src)
		name(f.Dst)
		out.TraceEvents = append(out.TraceEvents,
			chromeEvent{
				Name: "msg", Cat: "flow", Ph: "s", ID: f.ID,
				Ts: float64(f.SendWallNs-base) / 1e3, Pid: 0, Tid: f.Src,
				Args: map[string]any{"bytes": f.Bytes, "virt_send_s": f.SendVirtSec},
			},
			chromeEvent{
				Name: "msg", Cat: "flow", Ph: "f", BP: "e", ID: f.ID,
				Ts: float64(f.RecvWallNs-base) / 1e3, Pid: 0, Tid: f.Dst,
				Args: map[string]any{"virt_recv_s": f.RecvVirtSec},
			})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadTraceExtra recovers the exact virtual-time record embedded by
// WriteChromeTrace under the trace file's "casvm" key. The float64 JSON
// round trip is exact, so analyses computed from the file agree bitwise
// with the in-process ones.
func ReadTraceExtra(r io.Reader) (*TraceExtra, error) {
	var t struct {
		Casvm *TraceExtra `json:"casvm"`
	}
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: bad trace file: %w", err)
	}
	if t.Casvm == nil {
		return nil, fmt.Errorf("trace: trace file has no casvm section (exported before causal tracing?)")
	}
	if t.Casvm.Schema != TraceExtraSchema {
		return nil, fmt.Errorf("trace: casvm section schema %q, want %q", t.Casvm.Schema, TraceExtraSchema)
	}
	return t.Casvm, nil
}
