package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// The Chrome trace_event JSON object format, as consumed by
// chrome://tracing and Perfetto's legacy importer: a top-level object with
// a "traceEvents" array of events. Each rank renders as one thread
// (tid = rank) of a single process, named via "M" metadata events; spans
// are "X" (complete) events with microsecond timestamps, instants are "i".
// Virtual-clock seconds and modeled flops ride along in "args", where both
// viewers display them in the selection panel.

// chromeEvent is one trace_event entry.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant scope: "t" = thread
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace serializes the timeline as Chrome trace_event JSON.
// Timestamps are rebased so the earliest event starts at t=0, keeping the
// viewer's time axis readable.
func (t *Timeline) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	var base int64
	if len(events) > 0 {
		base = events[0].WallStartNs
	}
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	seen := map[int]bool{}
	for _, e := range events {
		if !seen[e.Rank] {
			seen[e.Rank] = true
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 0, Tid: e.Rank,
				Args: map[string]any{"name": fmt.Sprintf("rank %d", e.Rank)},
			})
		}
		ce := chromeEvent{
			Name: e.Name,
			Cat:  e.Cat,
			Ts:   float64(e.WallStartNs-base) / 1e3,
			Pid:  0,
			Tid:  e.Rank,
		}
		if e.Instant {
			ce.Ph = "i"
			ce.Scope = "t"
		} else {
			ce.Ph = "X"
			ce.Dur = float64(e.WallDurNs) / 1e3
			args := map[string]any{}
			if e.VirtDurSec != 0 || e.VirtStartSec != 0 {
				args["virt_start_s"] = e.VirtStartSec
				args["virt_dur_s"] = e.VirtDurSec
			}
			if e.Flops != 0 {
				args["flops"] = e.Flops
			}
			if len(args) > 0 {
				ce.Args = args
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
