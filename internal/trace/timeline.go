package trace

import (
	"sort"
	"sync/atomic"
	"time"
)

// Span categories, used as the Chrome trace_event "cat" field and for
// phase aggregation in run reports.
const (
	CatSolver     = "solver"     // SMO phases: scan, update, shrink
	CatKernel     = "kernel"     // kernel-row fills on cache misses
	CatCollective = "collective" // mpi collectives: Barrier, Bcast, Allreduce, …
	CatInit       = "init"       // partitioning and data movement
	CatTrain      = "train"      // whole-phase per-rank training spans
	CatFault      = "fault"      // injected/observed failures (instant events)
	CatCheckpoint = "checkpoint" // solver state snapshots (recovery support)
	CatRecovery   = "recovery"   // crash recovery: respawn/shrink restarts
)

// Event is one completed timeline span (or instant marker, when WallDurNs
// is zero and Instant is true). Wall times are real elapsed nanoseconds;
// virtual times are the α–β-model seconds of the mpi clock, when the
// recording site tracks one.
type Event struct {
	Name    string
	Cat     string
	Rank    int
	Instant bool

	WallStartNs int64 // unix nanoseconds
	WallDurNs   int64

	VirtStartSec float64 // mpi virtual clock at Begin (0 when untracked)
	VirtDurSec   float64

	Flops float64 // modeled flops attributed to the span (0 when untracked)
}

// Span is the in-flight handle returned by Recorder.Begin; pass it to End.
// The zero Span (from a nil Recorder) is inert.
type Span struct {
	name  string
	cat   string
	start time.Time
	virt  float64
	live  bool
}

// Recorder collects events for one rank. It is owned by that rank's
// goroutine; the Timeline join (reading Events after the world finishes)
// is the reader's happens-before edge. All methods are no-ops on a nil
// receiver and never allocate on that path, so instrumented code calls
// them unconditionally.
type Recorder struct {
	tl     *Timeline
	rank   int
	events []Event
	max    int
	drops  int64

	// Causal buffers (flow.go): delivered-message edges, the virtual-clock
	// segment tiling, and the phase label stamped onto new segments.
	flows     []FlowEdge
	segs      []Segment
	maxFlows  int
	maxSegs   int
	flowDrops int64
	segDrops  int64
	phase     string
}

// Begin opens a span with wall-clock timing only.
func (r *Recorder) Begin(cat, name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{name: name, cat: cat, start: time.Now(), live: true}
}

// BeginVirt opens a span that also tracks the virtual clock, which the
// caller reads from its mpi.Comm.
func (r *Recorder) BeginVirt(cat, name string, virtNow float64) Span {
	if r == nil {
		return Span{}
	}
	return Span{name: name, cat: cat, start: time.Now(), virt: virtNow, live: true}
}

// End closes a wall-clock-only span.
func (r *Recorder) End(sp Span) { r.emit(sp, sp.virt, 0) }

// EndVirt closes a span begun with BeginVirt, with the caller's current
// virtual clock.
func (r *Recorder) EndVirt(sp Span, virtNow float64) { r.emit(sp, virtNow, 0) }

// EndFlops closes a span and attributes a modeled flop count to it.
func (r *Recorder) EndFlops(sp Span, flops float64) { r.emit(sp, sp.virt, flops) }

func (r *Recorder) emit(sp Span, virtEnd, flops float64) {
	if r == nil || !sp.live {
		return
	}
	if len(r.events) >= r.max {
		r.drops++
		return
	}
	r.events = append(r.events, Event{
		Name:         sp.name,
		Cat:          sp.cat,
		Rank:         r.rank,
		WallStartNs:  sp.start.UnixNano(),
		WallDurNs:    int64(time.Since(sp.start)),
		VirtStartSec: sp.virt,
		VirtDurSec:   virtEnd - sp.virt,
		Flops:        flops,
	})
}

// AddEvent appends an already-completed event to the recorder, honoring
// the buffer cap. The event's Rank is overwritten with the recorder's
// rank so merged timelines cannot misattribute spans. This is the
// ingestion path for externally recorded spans (the fleet collector
// rebasing worker events onto a common clock); live instrumentation
// should keep using Begin/End.
func (r *Recorder) AddEvent(e Event) {
	if r == nil {
		return
	}
	if len(r.events) >= r.max {
		r.drops++
		return
	}
	e.Rank = r.rank
	r.events = append(r.events, e)
}

// Instant records a zero-duration marker event (e.g. a fault injection or
// a rank declared lost).
func (r *Recorder) Instant(cat, name string) {
	if r == nil {
		return
	}
	if len(r.events) >= r.max {
		r.drops++
		return
	}
	r.events = append(r.events, Event{
		Name:        name,
		Cat:         cat,
		Rank:        r.rank,
		Instant:     true,
		WallStartNs: time.Now().UnixNano(),
	})
}

// Rank returns the recorder's rank id (-1 for a nil recorder).
func (r *Recorder) Rank() int {
	if r == nil {
		return -1
	}
	return r.rank
}

// DefaultMaxEventsPerRank bounds each rank's event buffer. Beyond it,
// events are counted as dropped rather than recorded, so a long run cannot
// grow memory without bound; Timeline.Dropped reports how many were lost
// (never silently).
const DefaultMaxEventsPerRank = 1 << 15

// Timeline owns one Recorder per rank. Create it sized to the world,
// install it (mpi.World.SetTimeline or core.Params.Timeline), and read the
// merged events after the run. A nil *Timeline hands out nil Recorders,
// which keeps every instrumentation site on the zero-cost path.
type Timeline struct {
	recs    []*Recorder
	extra   atomic.Int64 // drops from out-of-range Rank requests
	maxRank int

	edgeSeq   atomic.Int64 // flow-edge id allocator (NextEdgeID)
	causality atomic.Int64 // flow edges that violated recv ≥ send

	// Timebase of the segment/edge "virtual" coordinates: TimebaseVirtual
	// (the α–β model clock, the default) or TimebaseWall for merged
	// multi-process timelines whose coordinates are offset-rebased wall
	// seconds. offsetsNs, when set, records the per-rank clock offset (rank
	// clock − reference clock, ns) applied during rebasing.
	timebase  string
	offsetsNs []int64
}

// Timebase values for Timeline.SetTimebase / TraceExtra.Timebase.
const (
	// TimebaseVirtual marks segment/edge coordinates as α–β-model virtual
	// seconds (the in-process default; an empty Timebase means the same).
	TimebaseVirtual = "virtual"
	// TimebaseWall marks coordinates as wall-clock seconds rebased onto a
	// common reference clock — produced by the fleet collector when merging
	// per-rank traces from real multi-process runs.
	TimebaseWall = "wall"
)

// SetTimebase declares the timeline's coordinate system and, optionally,
// the per-rank clock offsets (rank − reference, ns) that were applied to
// land every rank on it. No-op on a nil timeline.
func (t *Timeline) SetTimebase(tb string, offsetsNs []int64) {
	if t == nil {
		return
	}
	t.timebase = tb
	t.offsetsNs = offsetsNs
}

// NewTimeline creates a timeline for p ranks with the default per-rank
// event cap.
func NewTimeline(p int) *Timeline { return NewTimelineCap(p, DefaultMaxEventsPerRank) }

// NewTimelineCap is NewTimeline with an explicit per-rank event cap
// (minimum 1).
func NewTimelineCap(p, maxPerRank int) *Timeline {
	if p < 1 {
		p = 1
	}
	if maxPerRank < 1 {
		maxPerRank = 1
	}
	tl := &Timeline{recs: make([]*Recorder, p), maxRank: p}
	for r := range tl.recs {
		tl.recs[r] = &Recorder{tl: tl, rank: r, max: maxPerRank, events: make([]Event, 0, 64),
			maxFlows: DefaultMaxFlowsPerRank, maxSegs: DefaultMaxSegmentsPerRank}
	}
	return tl
}

// P returns the number of ranks the timeline was sized for (0 for nil).
func (t *Timeline) P() int {
	if t == nil {
		return 0
	}
	return t.maxRank
}

// Rank returns rank r's recorder. It is nil-safe: a nil timeline or an
// out-of-range rank yields a nil recorder, keeping callers on the no-op
// path instead of panicking.
func (t *Timeline) Rank(r int) *Recorder {
	if t == nil || r < 0 || r >= len(t.recs) {
		return nil
	}
	return t.recs[r]
}

// Events returns every recorded event merged across ranks, ordered by wall
// start time (ties by rank). Call it only after the recording goroutines
// have finished (e.g. after mpi.World.Run returns).
func (t *Timeline) Events() []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for _, r := range t.recs {
		out = append(out, r.events...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].WallStartNs != out[j].WallStartNs {
			return out[i].WallStartNs < out[j].WallStartNs
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

// Dropped returns how many events were discarded because a rank's buffer
// hit its cap.
func (t *Timeline) Dropped() int64 {
	if t == nil {
		return 0
	}
	var d int64
	for _, r := range t.recs {
		d += r.drops + r.flowDrops + r.segDrops
	}
	return d + t.extra.Load()
}

// PhaseStat aggregates the events sharing one (category, name) pair — the
// per-phase time split of a run report.
type PhaseStat struct {
	Cat     string  `json:"cat"`
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	WallSec float64 `json:"wall_sec"`
	VirtSec float64 `json:"virt_sec"`
	Flops   float64 `json:"flops,omitempty"`
}

// PhaseStats aggregates the timeline by (category, name), ordered by
// descending wall time. Instant events count but contribute no duration.
func (t *Timeline) PhaseStats() []PhaseStat {
	if t == nil {
		return nil
	}
	idx := map[[2]string]int{}
	var out []PhaseStat
	for _, r := range t.recs {
		for i := range r.events {
			e := &r.events[i]
			k := [2]string{e.Cat, e.Name}
			j, ok := idx[k]
			if !ok {
				j = len(out)
				idx[k] = j
				out = append(out, PhaseStat{Cat: e.Cat, Name: e.Name})
			}
			out[j].Count++
			out[j].WallSec += float64(e.WallDurNs) / 1e9
			out[j].VirtSec += e.VirtDurSec
			out[j].Flops += e.Flops
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].WallSec > out[j].WallSec })
	return out
}
