package trace

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ops_total", "ops")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter=%d", c.Value())
	}
	if reg.Counter("ops_total", "ops") != c {
		t.Fatal("counter resolution must be idempotent")
	}

	g := reg.Gauge("temp", "t")
	g.Set(1.5)
	g.Add(-0.5)
	if g.Value() != 1.0 {
		t.Fatalf("gauge=%v", g.Value())
	}

	h := reg.Histogram("lat_seconds", "l", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("hist count=%d", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Fatalf("hist sum=%v", h.Sum())
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("buckets: %v / %v", bounds, counts)
	}
	want := []int64{1, 2, 1, 1}
	for i, c := range counts {
		if c != want[i] {
			t.Fatalf("bucket %d=%d, want %d", i, c, want[i])
		}
	}
}

func TestHistogramBoundaryGoesToLowerBucket(t *testing.T) {
	h := NewRegistry().Histogram("h", "", []float64{1, 2})
	h.Observe(1) // exactly on the bound: counts as ≤1
	_, counts := h.Buckets()
	if counts[0] != 1 {
		t.Fatalf("boundary sample landed in %v", counts)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	if len(b) != 4 {
		t.Fatalf("len=%d", len(b))
	}
	for i := range b {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Fatalf("bucket %d=%v, want %v", i, b[i], want[i])
		}
	}
	if got := ExpBuckets(0, 2, 3); len(got) != 1 {
		t.Fatalf("degenerate input should give one bucket, got %v", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering x as a gauge must panic")
		}
	}()
	reg.Gauge("x", "")
}

func TestNilRegistryAndHandles(t *testing.T) {
	var reg *Registry
	c := reg.Counter("a", "")
	g := reg.Gauge("b", "")
	h := reg.Histogram("c", "", []float64{1})
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	// All nil-handle updates are no-ops and allocation-free.
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.Add(1)
		h.Observe(1)
	})
	if allocs != 0 {
		t.Fatalf("nil metric handles allocated %.1f/op, want 0", allocs)
	}
	if err := reg.WriteProm(nil); err != nil {
		t.Fatal(err)
	}
	if reg.Snapshot() != nil || reg.String() != "" {
		t.Fatal("nil registry output must be empty")
	}
	if err := reg.Publish("never"); err != nil {
		t.Fatal(err)
	}
}

func TestWritePromFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("casvm_ops_total", "Total ops.").Add(7)
	reg.Gauge("casvm_ratio", "A ratio.").Set(0.25)
	h := reg.Histogram("casvm_lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP casvm_ops_total Total ops.",
		"# TYPE casvm_ops_total counter",
		"casvm_ops_total 7",
		"# TYPE casvm_ratio gauge",
		"casvm_ratio 0.25",
		"# TYPE casvm_lat_seconds histogram",
		`casvm_lat_seconds_bucket{le="0.1"} 1`,
		`casvm_lat_seconds_bucket{le="1"} 2`,
		`casvm_lat_seconds_bucket{le="+Inf"} 3`,
		"casvm_lat_seconds_sum 5.55",
		"casvm_lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
}

// TestWritePromFamilyStructure enforces the exposition-format framing a
// strict scraper needs: every family's samples are preceded by exactly one
// # HELP and one # TYPE line (in that order, HELP present even with empty
// help text), and help strings escape backslashes and newlines.
func TestWritePromFamilyStructure(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "").Inc() // empty help must still emit # HELP
	reg.Gauge("b_ratio", "line1\nline2 \\ backslash").Set(1)
	reg.Histogram("c_seconds", "Latency.", []float64{1}).Observe(0.5)

	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("exposition must end with a newline")
	}
	help := map[string]int{}
	typ := map[string]int{}
	var families []string
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		fields := strings.Fields(line)
		switch {
		case strings.HasPrefix(line, "# HELP "):
			name := fields[2]
			help[name]++
			families = append(families, name)
			if typ[name] != 0 {
				t.Fatalf("HELP for %s after its TYPE:\n%s", name, out)
			}
		case strings.HasPrefix(line, "# TYPE "):
			name := fields[2]
			typ[name]++
			if help[name] != 1 {
				t.Fatalf("TYPE for %s without preceding HELP:\n%s", name, out)
			}
		case line == "":
			t.Fatalf("blank line in exposition:\n%s", out)
		default:
			// A sample: its family (name minus histogram suffixes and
			// labels) must already have HELP+TYPE.
			name := fields[0]
			if i := strings.IndexByte(name, '{'); i >= 0 {
				name = name[:i]
			}
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if base := strings.TrimSuffix(name, suf); base != name && typ[base] == 1 {
					name = base
					break
				}
			}
			if help[name] != 1 || typ[name] != 1 {
				t.Fatalf("sample %q before its HELP/TYPE:\n%s", line, out)
			}
		}
	}
	if len(families) != 3 {
		t.Fatalf("families %v, want 3", families)
	}
	if !strings.Contains(out, "# HELP a_total\n") {
		t.Fatalf("empty-help family must emit a bare # HELP line:\n%s", out)
	}
	if !strings.Contains(out, `# HELP b_ratio line1\nline2 \\ backslash`) {
		t.Fatalf("help escaping wrong:\n%s", out)
	}
}

func TestSnapshotAndString(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "").Add(2)
	reg.Gauge("b", "").Set(3.5)
	h := reg.Histogram("c_seconds", "", []float64{1})
	h.Observe(0.5)
	h.Observe(2)

	snap := reg.Snapshot()
	if snap["a_total"] != 2 || snap["b"] != 3.5 {
		t.Fatalf("snapshot: %v", snap)
	}
	if snap["c_seconds_count"] != 2 || snap["c_seconds_sum"] != 2.5 {
		t.Fatalf("snapshot histogram: %v", snap)
	}
	s := reg.String()
	if !strings.Contains(s, "a_total=2") || !strings.Contains(s, "b=3.5") {
		t.Fatalf("String(): %q", s)
	}
}

// publishOnce guards the first Publish: expvar registration is
// process-global, and `go test -cpu 1,4` runs this test twice in one
// process.
var publishOnce sync.Once

func TestPublishRejectsDuplicates(t *testing.T) {
	publishOnce.Do(func() {
		reg := NewRegistry()
		reg.Counter("x_total", "").Inc()
		if err := reg.Publish("trace_test_metrics"); err != nil {
			t.Fatal(err)
		}
	})
	if err := NewRegistry().Publish("trace_test_metrics"); err == nil {
		t.Fatal("second Publish under the same name must error, not panic")
	}
}

func TestConcurrentMetricUpdates(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("n_total", "")
			h := reg.Histogram("h_seconds", "", []float64{1, 10})
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 20))
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("n_total", "").Value(); got != 8000 {
		t.Fatalf("lost counter updates: %d", got)
	}
	if got := reg.Histogram("h_seconds", "", nil).Count(); got != 8000 {
		t.Fatalf("lost observations: %d", got)
	}
}

// TestHistogramQuantile pins the interpolation rule: a uniform fill of one
// bucket interpolates linearly, extremes clamp, the +Inf bucket saturates
// at the highest finite bound, and nil/empty histograms report 0.
func TestHistogramQuantile(t *testing.T) {
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile")
	}
	reg := NewRegistry()
	h := reg.Histogram("q_seconds", "", []float64{1, 2, 4, 8})
	if h.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile")
	}
	// 100 samples uniformly into the (1, 2] bucket.
	for i := 0; i < 100; i++ {
		h.Observe(1.5)
	}
	if got := h.Quantile(0.5); got != 1.5 {
		t.Fatalf("median %v, want 1.5 (linear interpolation at half the bucket)", got)
	}
	if got := h.Quantile(1); got != 2 {
		t.Fatalf("q=1 %v, want the bucket's upper bound", got)
	}
	if got := h.Quantile(-1); got != h.Quantile(0) {
		t.Fatalf("q<0 not clamped: %v", got)
	}
	// An observation beyond every bound lands in +Inf and saturates.
	h2 := reg.Histogram("q2_seconds", "", []float64{1, 2})
	h2.Observe(99)
	if got := h2.Quantile(0.99); got != 2 {
		t.Fatalf("+Inf bucket quantile %v, want highest finite bound 2", got)
	}
}

// TestHistogramQuantileEmpty is the regression test for the empty-histogram
// and empty-bucket paths: every quantile of an unobserved histogram is
// exactly 0 (never NaN or a bucket bound), a zero-value Histogram is safe,
// and ranks that land on the boundary of an empty bucket are attributed to
// a bucket that actually saw data.
func TestHistogramQuantileEmpty(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("qe_seconds", "", []float64{0.001, 1, 100})
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		got := h.Quantile(q)
		if got != 0 {
			t.Fatalf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
		if math.IsNaN(got) {
			t.Fatalf("empty histogram Quantile(%v) is NaN", q)
		}
	}
	var zero Histogram
	if got := zero.Quantile(0.5); got != 0 {
		t.Fatalf("zero-value histogram Quantile = %v, want 0", got)
	}

	// Empty leading buckets: all mass in (10, 100]. q=0's rank (0) sits on
	// the boundary of every empty bucket before it; it must report from the
	// populated bucket, not an empty bound.
	h2 := reg.Histogram("qe2_seconds", "", []float64{1, 10, 100})
	for i := 0; i < 10; i++ {
		h2.Observe(50)
	}
	if got := h2.Quantile(0); got != 10 {
		t.Fatalf("q=0 with empty leading buckets = %v, want 10 (lower bound of the populated bucket)", got)
	}
	if got := h2.Quantile(1); got != 100 {
		t.Fatalf("q=1 = %v, want 100", got)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		got := h2.Quantile(q)
		if math.IsNaN(got) || got < 10 || got > 100 {
			t.Fatalf("Quantile(%v) = %v, want inside the populated bucket (10, 100]", q, got)
		}
	}
}
