package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func flowTimeline(t *testing.T) *Timeline {
	t.Helper()
	tl := NewTimeline(3)
	r1, r2 := tl.Rank(1), tl.Rank(2)
	// Rank 0 sends to 1 and 2; edges are recorded receiver-side.
	e1 := FlowEdge{ID: tl.NextEdgeID(), Src: 0, Dst: 1, Tag: 7, Bytes: 128,
		SendVirtSec: 1.0, RecvVirtSec: 1.5, SendWallNs: 1000, RecvWallNs: 2000,
		LatencySec: 1.5e-6, BandwidthSec: 128.0 / 4 * 6.7e-10}
	e2 := FlowEdge{ID: tl.NextEdgeID(), Src: 0, Dst: 2, Tag: 7, Bytes: 256,
		SendVirtSec: 2.0, RecvVirtSec: 2.25, SendWallNs: 3000, RecvWallNs: 4000}
	r1.RecordFlow(e1)
	r2.RecordFlow(e2)
	r2.RecordFlow(e2) // fault-injected duplicate delivery: same id
	return tl
}

// TestFlowEventSchema is the acceptance schema test: every exported flow
// start ("s") has exactly one matching finish ("f") with the same id, ids
// are unique per edge, and the "f" side binds to the enclosing slice.
func TestFlowEventSchema(t *testing.T) {
	tl := flowTimeline(t)
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := decodeStrict(t, buf.Bytes())

	starts := map[int64]strictChromeEvent{}
	finishes := map[int64]strictChromeEvent{}
	for _, e := range out.TraceEvents {
		switch e.Ph {
		case "s":
			if _, dup := starts[e.ID]; dup {
				t.Fatalf("duplicate flow start id %d", e.ID)
			}
			starts[e.ID] = e
		case "f":
			if _, dup := finishes[e.ID]; dup {
				t.Fatalf("duplicate flow finish id %d", e.ID)
			}
			if e.BP != "e" {
				t.Fatalf("flow finish id %d: bp=%q, want \"e\"", e.ID, e.BP)
			}
			finishes[e.ID] = e
		case "M":
		default:
			t.Fatalf("unexpected phase %q in flow-only trace", e.Ph)
		}
	}
	if len(starts) != 2 || len(finishes) != 2 {
		t.Fatalf("got %d starts, %d finishes; want 2 and 2 (duplicate delivery deduped)", len(starts), len(finishes))
	}
	for id, s := range starts {
		f, ok := finishes[id]
		if !ok {
			t.Fatalf("flow start id %d has no finish", id)
		}
		if s.Tid == f.Tid {
			t.Fatalf("flow id %d starts and finishes on the same lane %d", id, s.Tid)
		}
		if f.Ts < s.Ts {
			t.Fatalf("flow id %d finishes before it starts (%v < %v)", id, f.Ts, s.Ts)
		}
		if s.Name != "msg" || s.Cat != "flow" {
			t.Fatalf("flow start naming: %+v", s)
		}
	}
}

func decodeStrict(t *testing.T, b []byte) strictChromeTrace {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var out strictChromeTrace
	if err := dec.Decode(&out); err != nil {
		t.Fatalf("trace JSON violates the expected schema: %v", err)
	}
	return out
}

// TestTraceExtraRoundTrip: the casvm section written by WriteChromeTrace
// decodes back bit-identically through ReadTraceExtra.
func TestTraceExtraRoundTrip(t *testing.T) {
	tl := flowTimeline(t)
	tl.Rank(0).SetPhase("solve")
	tl.Rank(0).RecordSegment(SegComp, 0, 0.5, 0)
	tl.Rank(0).RecordSegment(SegLatency, 0.5, 0.625, 1)

	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceExtra(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tl.Extra()
	if got.Schema != TraceExtraSchema || got.P != 3 {
		t.Fatalf("extra header: %+v", got)
	}
	if len(got.Edges) != len(want.Edges) {
		t.Fatalf("%d edges, want %d", len(got.Edges), len(want.Edges))
	}
	for i := range want.Edges {
		if got.Edges[i] != want.Edges[i] {
			t.Fatalf("edge %d drifted through JSON: %+v vs %+v", i, got.Edges[i], want.Edges[i])
		}
	}
	if len(got.Segments[0]) != 2 || got.Segments[0][0] != want.Segments[0][0] {
		t.Fatalf("segments drifted: %+v", got.Segments)
	}
	if _, err := ReadTraceExtra(strings.NewReader(`{"traceEvents":[]}`)); err == nil {
		t.Fatal("want error for a trace without a casvm section")
	}
}

// TestRecordFlowCausalityCounter: recording an edge that arrives before it
// was sent increments the violation counter.
func TestRecordFlowCausalityCounter(t *testing.T) {
	tl := NewTimeline(2)
	tl.Rank(1).RecordFlow(FlowEdge{ID: tl.NextEdgeID(), Src: 0, Dst: 1,
		SendVirtSec: 2.0, RecvVirtSec: 1.0})
	if v := tl.CausalityViolations(); v != 1 {
		t.Fatalf("violations=%d, want 1", v)
	}
}

// TestSegmentMerging: adjacent comp segments in one phase merge; a phase
// change or a non-comp segment breaks the merge; zero-length comp is
// skipped.
func TestSegmentMerging(t *testing.T) {
	tl := NewTimeline(1)
	r := tl.Rank(0)
	r.SetPhase("a")
	r.RecordSegment(SegComp, 0, 1, 0)
	r.RecordSegment(SegComp, 1, 1, 0) // zero-length: skipped
	r.RecordSegment(SegComp, 1, 2, 0) // merges into [0,2]
	r.SetPhase("b")
	r.RecordSegment(SegComp, 2, 3, 0) // new phase: no merge
	r.RecordSegment(SegWait, 3, 4, 5)
	r.RecordSegment(SegComp, 4, 5, 0)
	segs := tl.Segments()[0]
	if len(segs) != 4 {
		t.Fatalf("got %d segments: %+v", len(segs), segs)
	}
	if segs[0] != (Segment{Kind: SegComp, Start: 0, End: 2, Phase: "a"}) {
		t.Fatalf("merged segment: %+v", segs[0])
	}
	if segs[1].Phase != "b" || segs[2].Kind != SegWait || segs[2].EdgeID != 5 {
		t.Fatalf("segments: %+v", segs)
	}
}

// TestFlowBufferCaps: overflowing the per-rank flow/segment buffers counts
// drops instead of growing without bound.
func TestFlowBufferCaps(t *testing.T) {
	tl := NewTimeline(1)
	r := tl.Rank(0)
	r.maxFlows, r.maxSegs = 2, 2
	for i := 0; i < 5; i++ {
		r.RecordFlow(FlowEdge{ID: tl.NextEdgeID(), Src: 0, Dst: 1})
		r.RecordSegment(SegWait, float64(i), float64(i+1), 0)
	}
	if len(r.flows) != 2 || len(r.segs) != 2 {
		t.Fatalf("buffers grew past caps: %d flows, %d segs", len(r.flows), len(r.segs))
	}
	if d := tl.Dropped(); d != 6 {
		t.Fatalf("dropped=%d, want 6", d)
	}
}

// TestNilTimelineFlowAPIs: every causal API is a safe no-op on nil.
func TestNilTimelineFlowAPIs(t *testing.T) {
	var tl *Timeline
	if tl.NextEdgeID() != 0 {
		t.Fatal("nil timeline must allocate the 0 sentinel")
	}
	if tl.FlowEdges() != nil || tl.Segments() != nil || tl.Extra() != nil {
		t.Fatal("nil timeline causal reads must be empty")
	}
	var r *Recorder
	r.SetPhase("x")
	r.RecordFlow(FlowEdge{})
	r.RecordSegment(SegComp, 0, 1, 0)
	if tl.CausalityViolations() != 0 {
		t.Fatal("nil timeline violations")
	}
}
