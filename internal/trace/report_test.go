package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sampleReport() *Report {
	return &Report{
		Method:  "ra-ca",
		Dataset: "ijcnn",
		P:       8,
		Threads: 4,
		Seed:    1,
		Machine: MachineInfo{TcSec: 1e-10, TsSec: 1.5e-6, TwSec: 6.7e-10},
		Solver:  SolverInfo{C: 1, Tol: 1e-3, Kernel: "gaussian", Gamma: 0.05},

		Iters:      1449,
		SVs:        1845,
		TotalFlops: 1.8e8,
		Accuracy:   0.9758,
		ModelHash:  "abc123",

		InitSec: 0.001, TrainSec: 0.004, TotalSec: 0.005,
		WallSec: 0.12, CompSec: 0.004, CommSec: 0.0002,

		CommBytes:  1024,
		CommOps:    12,
		CommMatrix: [][]int64{{0, 512}, {512, 0}},

		LostRanks: []int{3},
		Degraded:  true,
	}
}

func TestReportRoundTrip(t *testing.T) {
	r := sampleReport()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
}

func TestReportSchemaStamp(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Report{}).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), ReportSchema) {
		t.Fatalf("report must carry the schema id:\n%s", buf.String())
	}
}

func TestReadReportRejectsBadSchema(t *testing.T) {
	if _, err := ReadReport(strings.NewReader(`{"schema":"casvm.report/v999","method":"x","p":1,"seed":0,"machine":{"tc_sec":0,"ts_sec":0,"tw_sec":0},"solver":{"c":0,"tol":0,"kernel":""},"iters":0,"svs":0,"total_flops":0,"init_sec":0,"train_sec":0,"total_sec":0,"wall_sec":0,"comp_sec":0,"comm_sec":0,"comm_bytes":0,"comm_ops":0}`)); err == nil {
		t.Fatal("unknown schema must be rejected")
	}
}

func TestReadReportRejectsUnknownFields(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(buf.String(), `"method"`, `"bogus_field": 1, "method"`, 1)
	if _, err := ReadReport(strings.NewReader(bad)); err == nil {
		t.Fatal("unknown fields must be rejected")
	}
}

func TestAttachTimelineAndMetrics(t *testing.T) {
	tl := NewTimelineCap(1, 2)
	rec := tl.Rank(0)
	rec.End(rec.Begin(CatSolver, "scan"))
	rec.End(rec.Begin(CatSolver, "scan"))
	rec.End(rec.Begin(CatSolver, "scan")) // over the cap: dropped

	reg := NewRegistry()
	reg.Counter("iters_total", "").Add(42)

	var r Report
	r.AttachTimeline(tl)
	r.AttachMetrics(reg)
	if r.TimelineEvents != 2 || r.TimelineDropped != 1 {
		t.Fatalf("timeline attach: events=%d dropped=%d", r.TimelineEvents, r.TimelineDropped)
	}
	if len(r.Phases) != 1 || r.Phases[0].Count != 2 {
		t.Fatalf("phases: %+v", r.Phases)
	}
	if r.Metrics["iters_total"] != 42 {
		t.Fatalf("metrics: %v", r.Metrics)
	}

	var clean Report
	clean.AttachTimeline(nil)
	clean.AttachMetrics(nil)
	if clean.Phases != nil || clean.Metrics != nil {
		t.Fatal("nil attachments must leave the report empty")
	}
}
