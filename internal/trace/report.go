package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// ReportSchema identifies the run-report JSON layout; bump it when a field
// changes meaning. v2 added the critical-path decomposition (CritPath).
const ReportSchema = "casvm.report/v2"

// MachineInfo records the α–β machine constants a run was modeled with
// (perfmodel.Machine, flattened so this package needs no import).
type MachineInfo struct {
	TcSec float64 `json:"tc_sec"` // seconds per flop
	TsSec float64 `json:"ts_sec"` // message startup
	TwSec float64 `json:"tw_sec"` // per-4-byte-word transfer
}

// SolverInfo records the hyper-parameters of a run.
type SolverInfo struct {
	C         float64 `json:"c"`
	Tol       float64 `json:"tol"`
	Kernel    string  `json:"kernel"`
	Gamma     float64 `json:"gamma,omitempty"`
	PosWeight float64 `json:"pos_weight,omitempty"`
}

// Report is the structured, machine-readable summary of one training run:
// what ran, on what modeled machine, how the time split across phases,
// what moved over the network, what failed, and what came out. It is what
// `casvm-train -report out.json` writes and what downstream tooling
// (dashboards, regression tracking) consumes.
type Report struct {
	Schema  string `json:"schema"`
	Method  string `json:"method"`
	Dataset string `json:"dataset,omitempty"`
	P       int    `json:"p"`
	Threads int    `json:"threads,omitempty"`
	Seed    int64  `json:"seed"`

	Machine MachineInfo `json:"machine"`
	Solver  SolverInfo  `json:"solver"`

	// Outcome.
	Iters      int     `json:"iters"`
	SVs        int     `json:"svs"`
	TotalFlops float64 `json:"total_flops"`
	Accuracy   float64 `json:"accuracy,omitempty"`
	ModelHash  string  `json:"model_hash,omitempty"`

	// Time split (virtual α–β seconds, plus real wall time).
	InitSec  float64 `json:"init_sec"`
	TrainSec float64 `json:"train_sec"`
	TotalSec float64 `json:"total_sec"`
	WallSec  float64 `json:"wall_sec"`
	CompSec  float64 `json:"comp_sec"`
	CommSec  float64 `json:"comm_sec"`

	// Communication (Fig 8 / Table XI).
	CommBytes  int64     `json:"comm_bytes"`
	CommOps    int64     `json:"comm_ops"`
	CommMatrix [][]int64 `json:"comm_matrix,omitempty"`

	// Per-phase split aggregated from the timeline (empty when no
	// timeline was attached).
	Phases          []PhaseStat `json:"phases,omitempty"`
	TimelineEvents  int         `json:"timeline_events,omitempty"`
	TimelineDropped int64       `json:"timeline_dropped,omitempty"`

	// Failures and recovery.
	LostRanks   []int   `json:"lost_ranks,omitempty"`
	Degraded    bool    `json:"degraded,omitempty"`
	Recoveries  int     `json:"recoveries,omitempty"`
	RecoverySec float64 `json:"recovery_sec,omitempty"`

	// Faults records the realized fault schedule of a chaos run (seed,
	// per-event rank/iter/kind), making any failure replayable from the
	// report alone (`casvm-train -replay-faults`).
	Faults *FaultsInfo `json:"faults,omitempty"`

	// Flattened metrics snapshot (Registry.Snapshot), when metrics were
	// attached.
	Metrics map[string]float64 `json:"metrics,omitempty"`

	// Critical-path decomposition of the virtual makespan (critpath
	// package), when a timeline with causal tracing was attached.
	CritPath *CritPathReport `json:"crit_path,omitempty"`
}

// CritPathReport is the critical-path decomposition embedded in a run
// report: the makespan split into the four α–β buckets, overall and per
// algorithm phase. CompSec+LatencySec+BandwidthSec+WaitSec equals
// MakespanSec up to float round-off.
type CritPathReport struct {
	MakespanSec  float64 `json:"makespan_sec"`
	EndRank      int     `json:"end_rank"`
	CompSec      float64 `json:"comp_sec"`
	LatencySec   float64 `json:"latency_sec"`
	BandwidthSec float64 `json:"bandwidth_sec"`
	WaitSec      float64 `json:"wait_sec"`
	Hops         int     `json:"hops"`
	Steps        int     `json:"steps"`

	Phases []CritPathPhase `json:"phases,omitempty"`
}

// FaultEvent is one planned or injected fault in a report's faults block.
// Kind follows the injector vocabulary: "crash-iter", "crash-send",
// "drop", "delay", "dup", "corrupt".
type FaultEvent struct {
	Kind     string  `json:"kind"`
	Rank     int     `json:"rank"`
	Dst      int     `json:"dst,omitempty"`      // receiver for message faults
	Iter     int     `json:"iter,omitempty"`     // trigger iteration (crash-iter)
	Send     int     `json:"send,omitempty"`     // 1-based remote-send index (message faults)
	DelaySec float64 `json:"delay_sec,omitempty"`
}

// FaultsInfo is the report's faults block: the seeded schedule that was
// configured plus the events that actually fired, with the recovery policy
// that handled them. Schedule alone is enough to replay the run.
type FaultsInfo struct {
	Seed            int64        `json:"seed"`
	Policy          string       `json:"recovery_policy,omitempty"`
	CheckpointEvery int          `json:"checkpoint_every,omitempty"`
	Schedule        []FaultEvent `json:"schedule,omitempty"`
	Injected        []FaultEvent `json:"injected,omitempty"`
}

// FaultReporter is implemented by fault injectors (faults.Schedule's
// injector) that can describe their schedule and realized events for the
// report's faults block.
type FaultReporter interface {
	FaultsInfo() *FaultsInfo
}

// CritPathPhase is one algorithm phase's share of the critical path.
type CritPathPhase struct {
	Phase        string  `json:"phase"`
	CompSec      float64 `json:"comp_sec"`
	LatencySec   float64 `json:"latency_sec"`
	BandwidthSec float64 `json:"bandwidth_sec"`
	WaitSec      float64 `json:"wait_sec"`
}

// AttachTimeline fills the report's phase aggregation from tl (no-op for a
// nil timeline).
func (r *Report) AttachTimeline(tl *Timeline) {
	if tl == nil {
		return
	}
	r.Phases = tl.PhaseStats()
	r.TimelineEvents = len(tl.Events())
	r.TimelineDropped = tl.Dropped()
}

// AttachMetrics embeds a registry snapshot (no-op for nil).
func (r *Report) AttachMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	r.Metrics = reg.Snapshot()
}

// WriteJSON serializes the report, indented, stamping the schema id.
func (r *Report) WriteJSON(w io.Writer) error {
	r.Schema = ReportSchema
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses a report written by WriteJSON, rejecting unknown
// fields and schema mismatches so drift fails loudly.
func ReadReport(rd io.Reader) (*Report, error) {
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	var r Report
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("trace: bad report: %w", err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("trace: report schema %q, want %q", r.Schema, ReportSchema)
	}
	return &r, nil
}
