package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRunReportRoundTrip asserts the report parser never panics on arbitrary
// input, and that whatever it accepts survives a write→read round trip
// unchanged (the strict-schema guarantee downstream tooling relies on). Run
// with `go test -fuzz FuzzRunReportRoundTrip ./internal/trace` for extended
// exploration; the seed corpus runs in normal test mode.
func FuzzRunReportRoundTrip(f *testing.F) {
	var full bytes.Buffer
	if err := sampleReport().WriteJSON(&full); err != nil {
		f.Fatal(err)
	}
	seeds := []string{
		"",
		"{}",
		"null",
		`{"schema":"casvm.report/v2"}`,
		`{"schema":"casvm.report/v0"}`,
		`{"schema":"casvm.report/v2","p":-1,"iters":9e999}`,
		`{"schema":"casvm.report/v2","comm_matrix":[[1,2],[3]]}`,
		`{"schema":"casvm.report/v2","metrics":{"a":1.5}}`,
		`{"schema":"casvm.report/v2","phases":[{"cat":"solver","name":"scan","count":1,"wall_sec":0.1,"virt_sec":0}]}`,
		full.String(),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		r, err := ReadReport(strings.NewReader(in))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted report failed to serialize: %v", err)
		}
		first := buf.String()
		r2, err := ReadReport(strings.NewReader(first))
		if err != nil {
			t.Fatalf("our own output was rejected: %v\n%s", err, first)
		}
		var buf2 bytes.Buffer
		if err := r2.WriteJSON(&buf2); err != nil {
			t.Fatal(err)
		}
		if first != buf2.String() {
			t.Fatalf("round trip not stable:\nfirst  %s\nsecond %s", first, buf2.String())
		}
	})
}
