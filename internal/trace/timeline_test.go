package trace

import (
	"testing"
	"time"
)

func TestTimelineRecordsSpansAndInstants(t *testing.T) {
	tl := NewTimeline(2)
	r0, r1 := tl.Rank(0), tl.Rank(1)

	sp := r0.BeginVirt(CatCollective, "Bcast", 1.0)
	time.Sleep(time.Millisecond)
	r0.EndVirt(sp, 1.5)

	sp = r1.Begin(CatSolver, "scan")
	r1.EndFlops(sp, 128)

	r0.Instant(CatFault, "rank-crashed")

	evs := tl.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	var bcast, scan, crash *Event
	for i := range evs {
		switch evs[i].Name {
		case "Bcast":
			bcast = &evs[i]
		case "scan":
			scan = &evs[i]
		case "rank-crashed":
			crash = &evs[i]
		}
	}
	if bcast == nil || scan == nil || crash == nil {
		t.Fatalf("missing events: %+v", evs)
	}
	if bcast.Cat != CatCollective || bcast.Rank != 0 {
		t.Fatalf("bcast event: %+v", *bcast)
	}
	if bcast.VirtStartSec != 1.0 || bcast.VirtDurSec != 0.5 {
		t.Fatalf("bcast virtual time: %+v", *bcast)
	}
	if bcast.WallDurNs < int64(time.Millisecond) {
		t.Fatalf("bcast wall duration %dns, want ≥1ms", bcast.WallDurNs)
	}
	if scan.Flops != 128 || scan.Rank != 1 {
		t.Fatalf("scan event: %+v", *scan)
	}
	if !crash.Instant || crash.WallDurNs != 0 {
		t.Fatalf("crash event: %+v", *crash)
	}
}

func TestTimelineEventsOrdered(t *testing.T) {
	tl := NewTimeline(2)
	for i := 0; i < 10; i++ {
		r := tl.Rank(i % 2)
		r.End(r.Begin(CatSolver, "x"))
	}
	evs := tl.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].WallStartNs < evs[i-1].WallStartNs {
			t.Fatalf("events out of order at %d", i)
		}
	}
}

func TestTimelineCapCountsDrops(t *testing.T) {
	tl := NewTimelineCap(1, 3)
	r := tl.Rank(0)
	for i := 0; i < 10; i++ {
		r.End(r.Begin(CatSolver, "x"))
	}
	r.Instant(CatFault, "y") // also counted against the cap
	if got := len(tl.Events()); got != 3 {
		t.Fatalf("kept %d events, want cap 3", got)
	}
	if got := tl.Dropped(); got != 8 {
		t.Fatalf("Dropped=%d, want 8", got)
	}
}

func TestTimelineNilSafety(t *testing.T) {
	var tl *Timeline
	if tl.Rank(0) != nil {
		t.Fatal("nil timeline must hand out nil recorders")
	}
	if tl.Events() != nil || tl.Dropped() != 0 || tl.PhaseStats() != nil || tl.P() != 0 {
		t.Fatal("nil timeline accessors must be empty")
	}
	// Out-of-range ranks must not panic either.
	real := NewTimeline(2)
	if real.Rank(-1) != nil || real.Rank(2) != nil {
		t.Fatal("out-of-range ranks must be nil recorders")
	}

	var r *Recorder
	sp := r.BeginVirt(CatSolver, "x", 1)
	r.End(sp)
	r.EndVirt(sp, 2)
	r.EndFlops(sp, 3)
	r.Instant(CatFault, "y")
	if r.Rank() != -1 {
		t.Fatal("nil recorder rank must be -1")
	}
}

// The disabled path must be allocation-free: instrumented hot loops call
// Begin/End unconditionally, so a nil recorder costing even one allocation
// would tax every un-traced run.
func TestNilRecorderDoesNotAllocate(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		sp := r.Begin(CatSolver, "scan")
		r.EndFlops(sp, 64)
		sp = r.BeginVirt(CatCollective, "Bcast", 1)
		r.EndVirt(sp, 2)
		r.Instant(CatFault, "crash")
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocated %.1f/op, want 0", allocs)
	}
}

func TestPhaseStatsAggregation(t *testing.T) {
	tl := NewTimeline(2)
	for rank := 0; rank < 2; rank++ {
		r := tl.Rank(rank)
		for i := 0; i < 3; i++ {
			sp := r.BeginVirt(CatSolver, "update", 0)
			r.EndVirt(sp, 0.25)
		}
		sp := r.Begin(CatKernel, "row-fill")
		r.EndFlops(sp, 100)
	}
	stats := tl.PhaseStats()
	if len(stats) != 2 {
		t.Fatalf("got %d phases, want 2: %+v", len(stats), stats)
	}
	byName := map[string]PhaseStat{}
	for _, s := range stats {
		byName[s.Name] = s
	}
	up := byName["update"]
	if up.Count != 6 || up.Cat != CatSolver {
		t.Fatalf("update phase: %+v", up)
	}
	if up.VirtSec < 1.49 || up.VirtSec > 1.51 {
		t.Fatalf("update virt=%v, want 1.5", up.VirtSec)
	}
	rf := byName["row-fill"]
	if rf.Count != 2 || rf.Flops != 200 {
		t.Fatalf("row-fill phase: %+v", rf)
	}
}
