package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestRecordAndTotals(t *testing.T) {
	s := NewStats(3)
	s.RecordSend(0, 1, 100)
	s.RecordSend(0, 1, 50)
	s.RecordSend(2, 0, 7)
	if s.Bytes(0, 1) != 150 || s.Ops(0, 1) != 2 {
		t.Fatalf("edge 0→1: %d bytes %d ops", s.Bytes(0, 1), s.Ops(0, 1))
	}
	if s.TotalBytes() != 157 || s.TotalOps() != 3 {
		t.Fatalf("totals %d/%d", s.TotalBytes(), s.TotalOps())
	}
	if got := s.BytesPerOp(); got < 52 || got > 53 {
		t.Fatalf("BytesPerOp=%v", got)
	}
	if s.P() != 3 {
		t.Fatal("P")
	}
}

func TestSelfSendIgnored(t *testing.T) {
	s := NewStats(2)
	s.RecordSend(1, 1, 999)
	if s.TotalBytes() != 0 || s.TotalOps() != 0 {
		t.Fatal("self-sends must not count")
	}
	if s.BytesPerOp() != 0 {
		t.Fatal("BytesPerOp with no ops must be 0")
	}
}

func TestMatrixCopy(t *testing.T) {
	s := NewStats(2)
	s.RecordSend(0, 1, 5)
	m := s.Matrix()
	m[0][1] = 999 // mutating the copy must not affect the stats
	if s.Bytes(0, 1) != 5 {
		t.Fatal("Matrix must return a copy")
	}
}

func TestTimeAccounting(t *testing.T) {
	s := NewStats(2)
	s.AddComp(0, 1.5)
	s.AddComp(1, 3.0)
	s.AddComm(0, 0.5)
	if s.CompSec(1) != 3.0 || s.CommSec(0) != 0.5 {
		t.Fatal("per-rank times")
	}
	if s.MaxCompSec() != 3.0 || s.MaxCommSec() != 0.5 {
		t.Fatal("maxima")
	}
	want := 0.5 / 3.5
	if got := s.CommRatio(); got != want {
		t.Fatalf("CommRatio=%v want %v", got, want)
	}
}

func TestCommRatioEmpty(t *testing.T) {
	if NewStats(1).CommRatio() != 0 {
		t.Fatal("empty ratio should be 0")
	}
}

func TestConcurrentRecording(t *testing.T) {
	s := NewStats(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.RecordSend(g%4, (g+1)%4, 1)
			}
		}(g)
	}
	wg.Wait()
	if s.TotalBytes() != 8000 {
		t.Fatalf("lost updates: %d", s.TotalBytes())
	}
}

func TestFormatMatrix(t *testing.T) {
	s := NewStats(2)
	s.RecordSend(0, 1, 42)
	out := s.FormatMatrix()
	if !strings.Contains(out, "42") {
		t.Fatalf("output missing data:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 3 {
		t.Fatalf("want header + 2 rows:\n%s", out)
	}
}
