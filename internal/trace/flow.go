package trace

import "sort"

// Causal cross-rank tracing: in addition to per-rank spans, the timeline
// records (a) a send→recv FlowEdge per delivered point-to-point message
// (collectives decompose into their point-to-point hops) and (b) a
// per-rank tiling of the virtual clock into typed Segments. Together they
// form the happens-before DAG that internal/trace/critpath walks to
// extract the critical path and split makespan into compute / latency /
// bandwidth / wait, mirroring the paper's α–β analysis.

// SegKind classifies one virtual-time segment of a rank's clock.
type SegKind uint8

const (
	// SegComp is modeled computation (Comm.Charge / ChargeTime).
	SegComp SegKind = iota
	// SegLatency is the α (ts) term of a send, independent of size.
	SegLatency
	// SegBandwidth is the β (tw·bytes) term of a send.
	SegBandwidth
	// SegWait is receiver idle time: the clock jump when a message
	// arrives after the receiver's local clock (imbalance / dependency
	// stall).
	SegWait
)

// String names the segment kind for reports and CLI output.
func (k SegKind) String() string {
	switch k {
	case SegComp:
		return "comp"
	case SegLatency:
		return "latency"
	case SegBandwidth:
		return "bandwidth"
	case SegWait:
		return "wait"
	}
	return "unknown"
}

// Segment is one half-open interval [Start, End) of a rank's virtual
// clock. Segments recorded through Recorder.RecordSegment tile the clock
// exactly: every clock advance on an instrumented Comm passes through
// exactly one segment. JSON keys are deliberately terse — traces carry
// hundreds of thousands of these.
type Segment struct {
	Kind  SegKind `json:"k"`
	Start float64 `json:"s"`
	End   float64 `json:"e"`
	// EdgeID links SegLatency/SegBandwidth to the FlowEdge being sent and
	// SegWait to the FlowEdge being waited on (0 = none).
	EdgeID int64 `json:"id,omitempty"`
	// Phase is the algorithm phase active when the segment was recorded
	// (Recorder.SetPhase), e.g. "partition", "solve", "assemble".
	Phase string `json:"ph,omitempty"`
}

// Dur returns the segment's virtual duration.
func (s Segment) Dur() float64 { return s.End - s.Start }

// FlowEdge is one delivered message: the happens-before edge from a send
// completing on Src to the matching recv on Dst, in both wall and virtual
// time. Recorded on the receiving rank (single-owner, no locking); edge
// ids come from Timeline.NextEdgeID and are unique per logical send
// (fault-injected duplicate deliveries share their original's id and are
// deduplicated at export).
type FlowEdge struct {
	ID    int64 `json:"id"`
	Src   int   `json:"src"`
	Dst   int   `json:"dst"`
	Tag   int   `json:"tag"`
	Bytes int   `json:"bytes"`

	// SendVirtSec is the sender's virtual clock after paying the full α–β
	// cost (send completion); RecvVirtSec is the receiver's clock after
	// synchronizing with the arrival. Causality demands
	// RecvVirtSec ≥ SendVirtSec (violations are counted, never silently
	// ignored).
	SendVirtSec float64 `json:"send_virt_s"`
	RecvVirtSec float64 `json:"recv_virt_s"`

	SendWallNs int64 `json:"send_wall_ns"`
	RecvWallNs int64 `json:"recv_wall_ns"`

	// LatencySec and BandwidthSec split the edge's α–β virtual cost:
	// LatencySec = ts, BandwidthSec = PtoP(bytes) − ts = tw·bytes/4.
	LatencySec   float64 `json:"latency_s"`
	BandwidthSec float64 `json:"bandwidth_s"`
}

// Default per-rank caps for the causal buffers. Dis-SMO on the golden E2E
// run records ~4.3k flows and ~21k segments per rank; the caps leave an
// order of magnitude of headroom while bounding memory like the event cap.
const (
	DefaultMaxFlowsPerRank    = 1 << 16
	DefaultMaxSegmentsPerRank = 1 << 18
)

// SetPhase labels subsequently recorded segments with an algorithm phase
// name. No-op on a nil recorder.
func (r *Recorder) SetPhase(name string) {
	if r == nil {
		return
	}
	r.phase = name
}

// RecordSegment appends one virtual-clock segment. Zero-length comp
// segments are skipped and adjacent comp segments in the same phase are
// merged (the solver charges per scan chunk; merging keeps the tiling
// compact without changing any sum). Latency/bandwidth/wait segments are
// always kept — even zero-length ones — because critpath's re-costing
// needs every send's bandwidth segment to resolve completion times.
func (r *Recorder) RecordSegment(kind SegKind, start, end float64, edgeID int64) {
	if r == nil {
		return
	}
	if kind == SegComp {
		if end == start {
			return
		}
		if n := len(r.segs); n > 0 {
			last := &r.segs[n-1]
			if last.Kind == SegComp && last.End == start && last.Phase == r.phase {
				last.End = end
				return
			}
		}
	}
	if len(r.segs) >= r.maxSegs {
		r.segDrops++
		return
	}
	r.segs = append(r.segs, Segment{Kind: kind, Start: start, End: end, EdgeID: edgeID, Phase: r.phase})
}

// RecordFlow appends one delivered-message edge, checking the causality
// invariant (recv virtual time ≥ send virtual time) as it does. A
// violation increments the timeline's counter instead of recording garbage
// silently; the edge is still kept so the DAG stays inspectable.
func (r *Recorder) RecordFlow(e FlowEdge) {
	if r == nil {
		return
	}
	if e.RecvVirtSec < e.SendVirtSec && r.tl != nil {
		r.tl.causality.Add(1)
	}
	if len(r.flows) >= r.maxFlows {
		r.flowDrops++
		return
	}
	r.flows = append(r.flows, e)
}

// NextEdgeID allocates a fresh flow-edge id (unique per timeline, starting
// at 1). A nil timeline returns 0, the "no edge" sentinel, so uninstrumented
// sends never allocate ids.
func (t *Timeline) NextEdgeID() int64 {
	if t == nil {
		return 0
	}
	return t.edgeSeq.Add(1)
}

// CausalityViolations returns how many recorded flow edges arrived before
// they were sent in virtual time — always 0 unless the clock arithmetic or
// the transport is broken.
func (t *Timeline) CausalityViolations() int64 {
	if t == nil {
		return 0
	}
	return t.causality.Load()
}

// FlowEdges returns every recorded flow edge merged across ranks, sorted
// by id and deduplicated (fault-injected duplicate deliveries reuse the
// original send's id; only the first-sorted copy survives). Like Events,
// call it only after the recording goroutines have finished.
func (t *Timeline) FlowEdges() []FlowEdge {
	if t == nil {
		return nil
	}
	var out []FlowEdge
	for _, r := range t.recs {
		out = append(out, r.flows...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	dst := out[:0]
	var prev int64 = -1
	for _, e := range out {
		if e.ID == prev {
			continue
		}
		prev = e.ID
		dst = append(dst, e)
	}
	return dst
}

// Segments returns each rank's virtual-clock tiling (index = rank). The
// per-rank slices are recorded in clock order by construction.
func (t *Timeline) Segments() [][]Segment {
	if t == nil {
		return nil
	}
	out := make([][]Segment, len(t.recs))
	for i, r := range t.recs {
		out[i] = r.segs
	}
	return out
}

// TraceExtraSchema identifies the casvm-private section of an exported
// Chrome trace file.
const TraceExtraSchema = "casvm.trace/v1"

// TraceExtra is the exact-virtual-time payload embedded in exported Chrome
// traces under the top-level "casvm" key (unknown top-level keys are
// ignored by Perfetto). It round-trips through encoding/json bit-exactly
// (float64 shortest-form encoding), so casvm-profile reproduces the
// in-process critical-path decomposition from the file alone.
type TraceExtra struct {
	Schema              string      `json:"schema"`
	P                   int         `json:"p"`
	CausalityViolations int64       `json:"causality_violations"`
	Segments            [][]Segment `json:"segments"`
	Edges               []FlowEdge  `json:"edges"`

	// Timebase is TimebaseVirtual (or empty) for in-process α–β traces and
	// TimebaseWall for fleet-merged multi-process traces whose coordinates
	// are offset-rebased wall seconds. ClockOffsetsNs, when present, is the
	// per-rank offset (rank clock − coordinator clock, ns) the merge
	// subtracted from each rank's timestamps.
	Timebase       string  `json:"timebase,omitempty"`
	ClockOffsetsNs []int64 `json:"clock_offsets_ns,omitempty"`
}

// Extra assembles the timeline's causal payload for trace export (nil for
// a nil timeline).
func (t *Timeline) Extra() *TraceExtra {
	if t == nil {
		return nil
	}
	return &TraceExtra{
		Schema:              TraceExtraSchema,
		P:                   t.maxRank,
		CausalityViolations: t.CausalityViolations(),
		Segments:            t.Segments(),
		Edges:               t.FlowEdges(),
		Timebase:            t.timebase,
		ClockOffsetsNs:      t.offsetsNs,
	}
}
