package trace

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// The metrics registry: named counters, gauges and fixed-bucket histograms
// shared by the runtime layers (collective latencies in mpi, row-cache hit
// rates in the solver, heartbeat gaps and reconnects in tcpmpi). Metric
// handles are resolved once (a mutex-guarded map lookup) and then updated
// lock-free with atomics; a nil *Registry resolves to nil handles whose
// update methods are single-branch no-ops, so instrumented code records
// unconditionally at zero cost when metrics are off.

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (no-op on nil).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one (no-op on nil).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float metric that may go up or down.
type Gauge struct{ v atomicFloat }

// Set stores v (no-op on nil).
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add offsets the gauge by v (no-op on nil).
func (g *Gauge) Add(v float64) {
	if g != nil {
		g.v.Add(v)
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets (cumulative style, like
// Prometheus: bucket i counts observations ≤ bounds[i], with an implicit
// +Inf bucket).
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomicFloat
	n      atomic.Int64
}

// Observe records one sample (no-op on nil).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Buckets returns (upper bounds..., +Inf implied) and the per-bucket
// (non-cumulative) counts. Nil-safe.
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	if h == nil {
		return nil, nil
	}
	bounds = append([]float64(nil), h.bounds...)
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// Quantile estimates the q-th quantile (clamped to [0, 1]) of the observed
// distribution by linear interpolation inside the containing bucket. The
// open +Inf bucket reports the highest finite bound (the histogram cannot
// resolve beyond it). Returns 0 for a nil or empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n)
	var cum int64
	for i, b := range h.bounds {
		c := h.counts[i].Load()
		if c == 0 {
			// An empty bucket holds no observation, so no rank can land in
			// it — skipping keeps q=0 (and any boundary rank) pinned to a
			// bucket that actually saw data instead of an arbitrary bound.
			continue
		}
		if float64(cum)+float64(c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + frac*(b-lo)
		}
		cum += c
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start with the given factor — the usual latency-histogram shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		return []float64{start}
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type metricEntry struct {
	name string
	help string
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry owns a namespace of metrics. Handle resolution (Counter, Gauge,
// Histogram) is idempotent get-or-create; concurrent resolution of the
// same name returns the same handle.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*metricEntry
	ordered []*metricEntry
}

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry { return &Registry{byName: map[string]*metricEntry{}} }

func (r *Registry) lookup(name, help string, kind metricKind) *metricEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byName[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("trace: metric %q re-registered with a different kind", name))
		}
		return e
	}
	e := &metricEntry{name: name, help: help, kind: kind}
	switch kind {
	case kindCounter:
		e.c = &Counter{}
	case kindGauge:
		e.g = &Gauge{}
	}
	r.byName[name] = e
	r.ordered = append(r.ordered, e)
	return e
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter).c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge).g
}

// Histogram returns the named histogram, creating it on first use with the
// given ascending upper bounds. Nil-safe. Bounds are fixed at creation;
// later calls with different bounds return the original histogram.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byName[name]; ok {
		if e.kind != kindHistogram {
			panic(fmt.Sprintf("trace: metric %q re-registered with a different kind", name))
		}
		return e.h
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	h := &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	e := &metricEntry{name: name, help: help, kind: kindHistogram, h: h}
	r.byName[name] = e
	r.ordered = append(r.ordered, e)
	return h
}

// snapshotEntries copies the entry list under the lock; values are read
// atomically afterwards.
func (r *Registry) snapshotEntries() []*metricEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*metricEntry(nil), r.ordered...)
}

// promEscapeHelp escapes a HELP string per the exposition format:
// backslashes and line feeds must be escaped so one metric's help cannot
// break the line framing.
func promEscapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WriteProm renders every metric in the Prometheus text exposition format
// (metric names are used verbatim; pick prometheus-compatible names).
// Every family is preceded by its # HELP and # TYPE lines — stricter
// scrapers reject bare samples. Nil-safe: a nil registry writes nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, e := range r.snapshotEntries() {
		if e.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.name, promEscapeHelp(e.help)); err != nil {
				return err
			}
		} else {
			if _, err := fmt.Fprintf(w, "# HELP %s\n", e.name); err != nil {
				return err
			}
		}
		var err error
		switch e.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", e.name, e.name, e.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", e.name, e.name, formatFloat(e.g.Value()))
		case kindHistogram:
			if _, err = fmt.Fprintf(w, "# TYPE %s histogram\n", e.name); err != nil {
				return err
			}
			bounds, counts := e.h.Buckets()
			var cum int64
			for i, b := range bounds {
				cum += counts[i]
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", e.name, formatFloat(b), cum); err != nil {
					return err
				}
			}
			cum += counts[len(counts)-1]
			_, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
				e.name, cum, e.name, formatFloat(e.h.Sum()), e.name, e.h.Count())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Snapshot flattens every metric to name → value: counters and gauges
// directly, histograms as name_count / name_sum. Run reports embed it.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	out := map[string]float64{}
	for _, e := range r.snapshotEntries() {
		switch e.kind {
		case kindCounter:
			out[e.name] = float64(e.c.Value())
		case kindGauge:
			out[e.name] = e.g.Value()
		case kindHistogram:
			out[e.name+"_count"] = float64(e.h.Count())
			out[e.name+"_sum"] = e.h.Sum()
		}
	}
	return out
}

// Publish exposes the registry under the given expvar name as a JSON map
// of Snapshot(). Publishing the same name twice (or colliding with another
// package's expvar) returns an error instead of expvar's panic.
func (r *Registry) Publish(name string) error {
	if r == nil {
		return nil
	}
	if expvar.Get(name) != nil {
		return fmt.Errorf("trace: expvar %q already published", name)
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	return nil
}

// String renders a compact name=value listing (counters and gauges only),
// for log lines.
func (r *Registry) String() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	for _, e := range r.snapshotEntries() {
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s=%d ", e.name, e.c.Value())
		case kindGauge:
			fmt.Fprintf(&b, "%s=%s ", e.name, formatFloat(e.g.Value()))
		}
	}
	return strings.TrimSpace(b.String())
}
