package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// strictChromeTrace mirrors the trace_event JSON layout with unknown fields
// rejected — the schema check the acceptance criteria call for. If the
// exporter ever emits a field the viewers do not know, or drops a required
// one, this decode fails.
type strictChromeTrace struct {
	TraceEvents     []strictChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string              `json:"displayTimeUnit"`
	Casvm           *TraceExtra         `json:"casvm"`
}

type strictChromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s"`
	ID    int64          `json:"id"`
	BP    string         `json:"bp"`
	Args  map[string]any `json:"args"`
}

func exportedTrace(t *testing.T) strictChromeTrace {
	t.Helper()
	tl := NewTimeline(2)
	r0 := tl.Rank(0)
	sp := r0.BeginVirt(CatCollective, "Allreduce", 1.0)
	r0.EndVirt(sp, 1.25)
	r1 := tl.Rank(1)
	sp = r1.Begin(CatKernel, "row-fill")
	r1.EndFlops(sp, 4096)
	r1.Instant(CatFault, "rank-crashed")

	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	dec.DisallowUnknownFields()
	var out strictChromeTrace
	if err := dec.Decode(&out); err != nil {
		t.Fatalf("trace JSON violates the expected schema: %v", err)
	}
	return out
}

func TestChromeTraceSchema(t *testing.T) {
	out := exportedTrace(t)
	if out.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit=%q", out.DisplayTimeUnit)
	}
	var meta, complete, instant int
	threadNames := map[int]bool{}
	for _, e := range out.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
			if e.Name != "thread_name" || e.Args["name"] == "" {
				t.Fatalf("bad metadata event: %+v", e)
			}
			threadNames[e.Tid] = true
		case "X":
			complete++
			if e.Dur < 0 || e.Ts < 0 {
				t.Fatalf("negative time in %+v", e)
			}
			if e.Cat == "" || e.Name == "" {
				t.Fatalf("X event missing name/cat: %+v", e)
			}
		case "i":
			instant++
			if e.Scope != "t" {
				t.Fatalf("instant scope=%q, want thread", e.Scope)
			}
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
		if e.Pid != 0 {
			t.Fatalf("pid=%d, want single process 0", e.Pid)
		}
	}
	if meta != 2 || !threadNames[0] || !threadNames[1] {
		t.Fatalf("want one thread_name per rank, got %d (%v)", meta, threadNames)
	}
	if complete != 2 || instant != 1 {
		t.Fatalf("got %d X and %d i events, want 2 and 1", complete, instant)
	}
}

func TestChromeTraceTimesRebasedAndArgs(t *testing.T) {
	out := exportedTrace(t)
	minTs := -1.0
	var allreduce *strictChromeEvent
	for i, e := range out.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		if minTs < 0 || e.Ts < minTs {
			minTs = e.Ts
		}
		if e.Name == "Allreduce" {
			allreduce = &out.TraceEvents[i]
		}
	}
	if minTs != 0 {
		t.Fatalf("earliest event at ts=%v, want rebased 0", minTs)
	}
	if allreduce == nil {
		t.Fatal("Allreduce event missing")
	}
	if allreduce.Args["virt_start_s"] != 1.0 || allreduce.Args["virt_dur_s"] != 0.25 {
		t.Fatalf("virtual-time args: %v", allreduce.Args)
	}
}

func TestChromeTraceEmptyTimeline(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTimeline(1).WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out strictChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.TraceEvents == nil || len(out.TraceEvents) != 0 {
		t.Fatalf("empty timeline must still emit a valid traceEvents array: %+v", out)
	}
}
