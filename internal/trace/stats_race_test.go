package trace

import (
	"sync"
	"testing"
)

// Regression for the comp/comm slot race: the time and flop slots were
// plain float64s with a read-only-after-join contract, but the degraded
// completion path (and live metrics snapshots) read them while rank
// goroutines are still charging time. Under -race this test fails on any
// non-atomic slot access; without -race it still checks nothing is lost
// when each slot keeps a single writer.
func TestStatsLiveReadersDuringRun(t *testing.T) {
	s := NewStats(4)
	const perRank = 2000
	stop := make(chan struct{})
	readerDone := make(chan struct{})

	// A live reader polling the aggregate views mid-run, like a degraded
	// completion inspecting a half-finished world.
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = s.MaxCompSec()
			_ = s.MaxCommSec()
			_ = s.CommRatio()
			_ = s.TotalFlops()
			_ = s.LostRanks()
			_ = s.Matrix()
		}
	}()

	var writers sync.WaitGroup
	for r := 0; r < 4; r++ {
		writers.Add(1)
		go func(r int) {
			defer writers.Done()
			for i := 0; i < perRank; i++ {
				s.AddComp(r, 0.001)
				s.AddComm(r, 0.0005)
				s.AddFlops(r, 10)
				s.RecordSend(r, (r+1)%4, 8)
			}
			if r == 3 {
				s.RecordLost(r)
			}
		}(r)
	}
	writers.Wait()
	close(stop)
	<-readerDone

	if got := s.TotalFlops(); got != 4*perRank*10 {
		t.Fatalf("TotalFlops=%v, want %v", got, 4*perRank*10)
	}
	wantSec := perRank * 0.001
	for r := 0; r < 4; r++ {
		if got := s.CompSec(r); got < wantSec*0.999 || got > wantSec*1.001 {
			t.Fatalf("rank %d CompSec=%v, want ≈%v", r, got, wantSec)
		}
	}
	if lost := s.LostRanks(); len(lost) != 1 || lost[0] != 3 {
		t.Fatalf("LostRanks=%v", lost)
	}
}

func TestAtomicFloatStoreLoad(t *testing.T) {
	var a atomicFloat
	a.Store(2.5)
	if a.Load() != 2.5 {
		t.Fatal("store/load")
	}
	a.Add(-1.25)
	if a.Load() != 1.25 {
		t.Fatal("add")
	}
}
