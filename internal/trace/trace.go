// Package trace is the observability layer of the runtime. It collects the
// communication and time statistics the paper reports — the P×P
// point-to-point byte matrix of Fig 8, the operation counts and
// volume-per-operation of Table XI, and the per-rank computation /
// communication virtual-time split of Fig 9 — and grows them into a full
// instrumentation subsystem:
//
//   - Stats: atomic aggregate counters (bytes, ops, comp/comm virtual
//     time, flops, lost ranks), safe to read live while ranks run.
//   - Timeline/Recorder: per-rank span events (solver phases, collectives)
//     carrying wall and virtual time, exportable to Chrome trace_event
//     JSON for chrome://tracing and Perfetto (chrometrace.go).
//   - Registry: counters, gauges and fixed-bucket histograms with expvar
//     and Prometheus-style text exposition (metrics.go).
//   - Report: a structured machine-readable run summary (report.go).
//
// Everything is designed around a nil-sink fast path: a nil *Timeline,
// *Recorder, *Registry, *Counter, *Gauge or *Histogram turns every
// recording call into a cheap nil-check no-op with zero allocations, so
// instrumented hot paths cost nothing when observability is off.
package trace

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
)

// atomicFloat is a float64 with atomic add/load, stored as raw bits. Each
// accumulation site is owned by one goroutine almost all of the time, so
// the CAS loop virtually never spins.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) Add(v float64) {
	for {
		old := a.bits.Load()
		if a.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (a *atomicFloat) Load() float64 { return math.Float64frombits(a.bits.Load()) }

func (a *atomicFloat) Store(v float64) { a.bits.Store(math.Float64bits(v)) }

// Stats accumulates communication statistics for one world of P ranks.
// Every slot is atomic, so Stats may be read at any time — including while
// rank goroutines are still running (live dashboards, metrics snapshots,
// and the degraded-mode completion path, which can inspect statistics
// for ranks that have crashed while survivors keep training).
type Stats struct {
	p     int
	bytes []atomic.Int64 // p×p matrix, row = sender, col = receiver
	ops   []atomic.Int64 // p×p matrix of message counts

	// Virtual time per rank, split by phase, plus the modeled flop count
	// behind the computation time. Written by the owning rank goroutine,
	// atomically, so concurrent readers see a coherent (if slightly stale)
	// value instead of a data race.
	compSec []atomicFloat
	commSec []atomicFloat
	flops   []atomicFloat

	// lost marks ranks that failed (crashed or errored) during the run —
	// the shards a degraded-mode completion proceeds without.
	lost []atomic.Bool
}

// NewStats creates statistics storage for p ranks.
func NewStats(p int) *Stats {
	return &Stats{
		p:       p,
		bytes:   make([]atomic.Int64, p*p),
		ops:     make([]atomic.Int64, p*p),
		compSec: make([]atomicFloat, p),
		commSec: make([]atomicFloat, p),
		flops:   make([]atomicFloat, p),
		lost:    make([]atomic.Bool, p),
	}
}

// P returns the number of ranks.
func (s *Stats) P() int { return s.p }

// RecordSend notes a transfer of n bytes from src to dst as one
// communication operation. Self-sends (src == dst) are local copies and are
// deliberately not counted, matching how MPI profilers count network
// traffic.
func (s *Stats) RecordSend(src, dst, n int) {
	if src == dst {
		return
	}
	s.bytes[src*s.p+dst].Add(int64(n))
	s.ops[src*s.p+dst].Add(1)
}

// RecordLost marks rank as failed during the run. Degraded-mode training
// reads it back through LostRanks to report which shards were lost.
func (s *Stats) RecordLost(rank int) {
	if rank >= 0 && rank < s.p {
		s.lost[rank].Store(true)
	}
}

// LostRanks returns the sorted list of ranks recorded as failed (empty for
// a clean run).
func (s *Stats) LostRanks() []int {
	var out []int
	for r := range s.lost {
		if s.lost[r].Load() {
			out = append(out, r)
		}
	}
	return out
}

// Lost reports whether rank was recorded as failed.
func (s *Stats) Lost(rank int) bool {
	return rank >= 0 && rank < s.p && s.lost[rank].Load()
}

// AddComp charges sec seconds of computation virtual time to rank.
func (s *Stats) AddComp(rank int, sec float64) { s.compSec[rank].Add(sec) }

// AddComm charges sec seconds of communication virtual time to rank.
func (s *Stats) AddComm(rank int, sec float64) { s.commSec[rank].Add(sec) }

// AddFlops books f modeled floating-point operations to rank. The mpi
// layer calls it alongside AddComp whenever computation is charged from a
// flop count, so TotalFlops reproduces the analytic work term.
func (s *Stats) AddFlops(rank int, f float64) { s.flops[rank].Add(f) }

// CompSec returns rank's accumulated computation virtual time.
func (s *Stats) CompSec(rank int) float64 { return s.compSec[rank].Load() }

// CommSec returns rank's accumulated communication virtual time.
func (s *Stats) CommSec(rank int) float64 { return s.commSec[rank].Load() }

// Flops returns rank's accumulated modeled flop count.
func (s *Stats) Flops(rank int) float64 { return s.flops[rank].Load() }

// TotalFlops returns the summed modeled flop count over all ranks. Flop
// accounting is deterministic (thread-count-invariant), so this is a
// reproducibility fingerprint of a run.
func (s *Stats) TotalFlops() float64 {
	var t float64
	for r := range s.flops {
		t += s.flops[r].Load()
	}
	return t
}

// Bytes returns the bytes sent from src to dst.
func (s *Stats) Bytes(src, dst int) int64 { return s.bytes[src*s.p+dst].Load() }

// Ops returns the number of messages sent from src to dst.
func (s *Stats) Ops(src, dst int) int64 { return s.ops[src*s.p+dst].Load() }

// Matrix returns a copy of the P×P byte matrix (Fig 8).
func (s *Stats) Matrix() [][]int64 {
	m := make([][]int64, s.p)
	for i := range m {
		m[i] = make([]int64, s.p)
		for j := range m[i] {
			m[i][j] = s.Bytes(i, j)
		}
	}
	return m
}

// TotalBytes returns the total bytes moved between distinct ranks.
func (s *Stats) TotalBytes() int64 {
	var t int64
	for i := range s.bytes {
		t += s.bytes[i].Load()
	}
	return t
}

// TotalOps returns the total number of messages between distinct ranks.
func (s *Stats) TotalOps() int64 {
	var t int64
	for i := range s.ops {
		t += s.ops[i].Load()
	}
	return t
}

// BytesPerOp returns average message size (Table XI's Amount/Operation), or
// 0 when no messages were sent.
func (s *Stats) BytesPerOp() float64 {
	ops := s.TotalOps()
	if ops == 0 {
		return 0
	}
	return float64(s.TotalBytes()) / float64(ops)
}

// MaxCompSec returns the largest per-rank computation time — the
// critical-path compute term.
func (s *Stats) MaxCompSec() float64 {
	var m float64
	for r := range s.compSec {
		if v := s.compSec[r].Load(); v > m {
			m = v
		}
	}
	return m
}

// MaxCommSec returns the largest per-rank communication time.
func (s *Stats) MaxCommSec() float64 {
	var m float64
	for r := range s.commSec {
		if v := s.commSec[r].Load(); v > m {
			m = v
		}
	}
	return m
}

// CommRatio returns max-rank comm time / (comm + comp), the Fig 9 metric.
// It is 0 when nothing was recorded.
func (s *Stats) CommRatio() float64 {
	comm, comp := s.MaxCommSec(), s.MaxCompSec()
	if comm+comp == 0 {
		return 0
	}
	return comm / (comm + comp)
}

// FormatMatrix renders the byte matrix as an aligned text table with the
// given cell width, for terminal reproduction of Fig 8.
func (s *Stats) FormatMatrix() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s", "s\\r")
	for j := 0; j < s.p; j++ {
		fmt.Fprintf(&b, " %10d", j)
	}
	b.WriteByte('\n')
	for i := 0; i < s.p; i++ {
		fmt.Fprintf(&b, "%6d", i)
		for j := 0; j < s.p; j++ {
			fmt.Fprintf(&b, " %10d", s.Bytes(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
