// Package multiclass extends the binary CA-SVM trainers to K-class
// problems the way the paper prescribes (§II-A): "Multi-class SVMs may be
// implemented as several independent binary-class SVMs; a multi-class SVM
// can be easily processed in parallel once its constituent binary-class
// SVMs are available."
//
// Two reductions are provided: one-vs-rest (K binary machines, argmax of
// the decision values) and one-vs-one (K(K−1)/2 machines, majority vote).
// Each constituent binary problem trains with any of the eight distributed
// methods in internal/core.
package multiclass

import (
	"fmt"
	"sort"

	"casvm/internal/core"
	"casvm/internal/la"
	"casvm/internal/model"
)

// Scheme selects the binary reduction.
type Scheme int

const (
	// OneVsRest trains one machine per class against everything else and
	// predicts the class with the largest decision value.
	OneVsRest Scheme = iota
	// OneVsOne trains one machine per unordered class pair and predicts
	// by majority vote (ties resolve to the smaller class label).
	OneVsOne
)

// Model is a trained multiclass classifier.
type Model struct {
	Scheme  Scheme
	Classes []float64 // sorted distinct class labels

	// OneVsRest: Sets[i] separates Classes[i] (+1) from the rest (−1).
	// OneVsOne: Sets[k] separates PairA[k] (+1) from PairB[k] (−1).
	Sets  []*model.Set
	PairA []int // class indices, one-vs-one only
	PairB []int
}

// classesOf returns the sorted distinct labels of y.
func classesOf(y []float64) []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, v := range y {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Float64s(out)
	return out
}

// Train fits a multiclass model on (x, y) where y holds arbitrary class
// labels (at least two distinct values). Every constituent binary machine
// uses params (method, P, kernel, …); params.Seed is varied per machine so
// partitioners do not correlate.
func Train(x *la.Matrix, y []float64, params core.Params, scheme Scheme) (*Model, error) {
	if x == nil || x.Rows() != len(y) {
		return nil, fmt.Errorf("multiclass: samples and labels disagree")
	}
	classes := classesOf(y)
	if len(classes) < 2 {
		return nil, fmt.Errorf("multiclass: need ≥2 classes, got %d", len(classes))
	}
	m := &Model{Scheme: scheme, Classes: classes}
	switch scheme {
	case OneVsRest:
		for ci, c := range classes {
			bin := make([]float64, len(y))
			for i, v := range y {
				if v == c {
					bin[i] = 1
				} else {
					bin[i] = -1
				}
			}
			p := params
			p.Seed = params.Seed + int64(ci)*7919
			out, err := core.Train(x, bin, p)
			if err != nil {
				return nil, fmt.Errorf("multiclass: class %v: %w", c, err)
			}
			m.Sets = append(m.Sets, out.Set)
		}
	case OneVsOne:
		for ai := 0; ai < len(classes); ai++ {
			for bi := ai + 1; bi < len(classes); bi++ {
				rows := []int{}
				for i, v := range y {
					if v == classes[ai] || v == classes[bi] {
						rows = append(rows, i)
					}
				}
				sub := x.Subset(rows)
				bin := make([]float64, len(rows))
				for k, i := range rows {
					if y[i] == classes[ai] {
						bin[k] = 1
					} else {
						bin[k] = -1
					}
				}
				p := params
				p.Seed = params.Seed + int64(len(m.Sets))*7919
				if p.P > len(rows) {
					p.P = len(rows)
				}
				out, err := core.Train(sub, bin, p)
				if err != nil {
					return nil, fmt.Errorf("multiclass: pair (%v,%v): %w", classes[ai], classes[bi], err)
				}
				m.Sets = append(m.Sets, out.Set)
				m.PairA = append(m.PairA, ai)
				m.PairB = append(m.PairB, bi)
			}
		}
	default:
		return nil, fmt.Errorf("multiclass: unknown scheme %d", scheme)
	}
	return m, nil
}

// Predict returns the class label for row qi of q.
func (m *Model) Predict(q *la.Matrix, qi int) float64 {
	switch m.Scheme {
	case OneVsRest:
		best, bi := m.Sets[0].Decision(q, qi), 0
		for i := 1; i < len(m.Sets); i++ {
			if d := m.Sets[i].Decision(q, qi); d > best {
				best, bi = d, i
			}
		}
		return m.Classes[bi]
	default: // OneVsOne
		votes := make([]int, len(m.Classes))
		for k, set := range m.Sets {
			if set.Predict(q, qi) > 0 {
				votes[m.PairA[k]]++
			} else {
				votes[m.PairB[k]]++
			}
		}
		bi := 0
		for i, v := range votes {
			if v > votes[bi] {
				bi = i
			}
		}
		return m.Classes[bi]
	}
}

// PredictAll labels every row of q.
func (m *Model) PredictAll(q *la.Matrix) []float64 {
	out := make([]float64, q.Rows())
	for i := range out {
		out[i] = m.Predict(q, i)
	}
	return out
}

// Accuracy is the fraction of rows of q whose prediction matches y.
func (m *Model) Accuracy(q *la.Matrix, y []float64) float64 {
	if q.Rows() == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < q.Rows(); i++ {
		if m.Predict(q, i) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(q.Rows())
}

// Machines returns the number of constituent binary machines.
func (m *Model) Machines() int { return len(m.Sets) }
