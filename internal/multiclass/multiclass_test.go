package multiclass

import (
	"testing"

	"casvm/internal/core"
	"casvm/internal/data"
	"casvm/internal/kernel"
	"casvm/internal/la"
)

func fourClassSet(t *testing.T) (trainX *la.Matrix, trainY []float64, testX *la.Matrix, testY []float64) {
	t.Helper()
	trainX, trainY, testX, testY, err := data.GenerateMulticlass(data.MixtureSpec{
		Name: "mc", Train: 600, Test: 150, Features: 6, Clusters: 4,
		Separation: 8, Noise: 1, LabelNoise: 0.01, Seed: 5,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	return
}

func mcParams(m core.Method, p int) core.Params {
	pr := core.DefaultParams(m, p)
	pr.Kernel = kernel.RBF(1.0 / 12)
	return pr
}

func TestOneVsRest(t *testing.T) {
	trainX, trainY, testX, testY := fourClassSet(t)
	m, err := Train(trainX, trainY, mcParams(core.MethodRACA, 4), OneVsRest)
	if err != nil {
		t.Fatal(err)
	}
	if m.Machines() != 4 {
		t.Fatalf("machines=%d want 4", m.Machines())
	}
	if acc := m.Accuracy(testX, testY); acc < 0.92 {
		t.Errorf("OVR accuracy %.3f", acc)
	}
	preds := m.PredictAll(testX)
	for _, p := range preds {
		if p < 0 || p > 3 {
			t.Fatalf("prediction %v outside class range", p)
		}
	}
}

func TestOneVsOne(t *testing.T) {
	trainX, trainY, testX, testY := fourClassSet(t)
	m, err := Train(trainX, trainY, mcParams(core.MethodCPSVM, 4), OneVsOne)
	if err != nil {
		t.Fatal(err)
	}
	if m.Machines() != 6 { // 4·3/2
		t.Fatalf("machines=%d want 6", m.Machines())
	}
	if acc := m.Accuracy(testX, testY); acc < 0.92 {
		t.Errorf("OVO accuracy %.3f", acc)
	}
}

func TestSchemesAgreeOnEasyData(t *testing.T) {
	trainX, trainY, testX, _ := fourClassSet(t)
	ovr, err := Train(trainX, trainY, mcParams(core.MethodRACA, 2), OneVsRest)
	if err != nil {
		t.Fatal(err)
	}
	ovo, err := Train(trainX, trainY, mcParams(core.MethodRACA, 2), OneVsOne)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i := 0; i < testX.Rows(); i++ {
		if ovr.Predict(testX, i) == ovo.Predict(testX, i) {
			agree++
		}
	}
	if frac := float64(agree) / float64(testX.Rows()); frac < 0.9 {
		t.Errorf("schemes agree on only %.2f of easy data", frac)
	}
}

func TestBinaryLabelsWork(t *testing.T) {
	// Two classes degenerate to a single machine pair / two OVR machines.
	trainX, trainY, _, _, err := data.GenerateMulticlass(data.MixtureSpec{
		Name: "bin", Train: 120, Test: 0, Features: 4, Clusters: 2,
		Separation: 8, Noise: 1, Seed: 6,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(trainX, trainY, mcParams(core.MethodRACA, 2), OneVsOne)
	if err != nil {
		t.Fatal(err)
	}
	if m.Machines() != 1 {
		t.Fatalf("machines=%d want 1", m.Machines())
	}
	if acc := m.Accuracy(trainX, trainY); acc < 0.95 {
		t.Errorf("binary OVO train accuracy %.3f", acc)
	}
}

func TestValidation(t *testing.T) {
	x := la.NewDense(4, 1, []float64{1, 2, 3, 4})
	if _, err := Train(nil, nil, mcParams(core.MethodRACA, 1), OneVsRest); err == nil {
		t.Error("nil input should fail")
	}
	if _, err := Train(x, []float64{1, 1, 1, 1}, mcParams(core.MethodRACA, 1), OneVsRest); err == nil {
		t.Error("single class should fail")
	}
	if _, err := Train(x, []float64{0, 1, 0, 1}, mcParams(core.MethodRACA, 1), Scheme(9)); err == nil {
		t.Error("bad scheme should fail")
	}
}

func TestGenerateMulticlassValidation(t *testing.T) {
	spec := data.MixtureSpec{Name: "x", Train: 10, Features: 2, Clusters: 2, Separation: 1, Noise: 1, Seed: 1}
	if _, _, _, _, err := data.GenerateMulticlass(spec, 1); err == nil {
		t.Error("1 class should fail")
	}
	if _, _, _, _, err := data.GenerateMulticlass(spec, 3); err == nil {
		t.Error("classes > clusters should fail")
	}
	bad := spec
	bad.Train = 0
	if _, _, _, _, err := data.GenerateMulticlass(bad, 2); err == nil {
		t.Error("empty train should fail")
	}
}
