package smo

import (
	"math"
	"math/rand"
	"testing"

	"casvm/internal/la"
)

// buildBlobs makes an imbalanced 2-D problem: mPos positives at (+1,+1)
// overlap mNeg negatives at (−1,−1); the overlap makes the unweighted SVM
// sacrifice positive recall.
func buildBlobs(rng *rand.Rand, mPos, mNeg int) (*la.Matrix, []float64) {
	m := mPos + mNeg
	dataBuf := make([]float64, 0, 2*m)
	y := make([]float64, 0, m)
	for i := 0; i < mPos; i++ {
		dataBuf = append(dataBuf, 1+1.2*rng.NormFloat64(), 1+1.2*rng.NormFloat64())
		y = append(y, 1)
	}
	for i := 0; i < mNeg; i++ {
		dataBuf = append(dataBuf, -1+1.2*rng.NormFloat64(), -1+1.2*rng.NormFloat64())
		y = append(y, -1)
	}
	return la.NewDense(m, 2, dataBuf), y
}

func TestPairSolveWeightedReducesToPlain(t *testing.T) {
	dah1, dal1 := PairSolve(1.5, 1, -1, -0.3, 0.7, 0.2, 0.4, 1, 1, 0.5)
	dah2, dal2 := PairSolveWeighted(1.5, 1.5, 1, -1, -0.3, 0.7, 0.2, 0.4, 1, 1, 0.5)
	if dah1 != dah2 || dal1 != dal2 {
		t.Fatalf("weighted with equal bounds must match plain: (%v,%v) vs (%v,%v)",
			dah1, dal1, dah2, dal2)
	}
}

func TestPairSolveWeightedRespectsBounds(t *testing.T) {
	// Positive high sample with large bound, negative low sample with
	// small bound: the low side must clip at its own cl.
	cases := []struct {
		ch, cl float64
		yh, yl float64
		ah, al float64
	}{
		{10, 1, 1, -1, 0.5, 0.9},
		{1, 10, 1, 1, 0.2, 0.3},
		{2, 0.5, -1, 1, 1.5, 0.1},
	}
	for _, c := range cases {
		dah, dal := PairSolveWeighted(c.ch, c.cl, c.yh, c.yl, -5, 5, c.ah, c.al, 1, 1, 0)
		ah, al := c.ah+dah, c.al+dal
		if al < -1e-12 || al > c.cl+1e-12 {
			t.Errorf("al=%v outside [0,%v]", al, c.cl)
		}
		if ah < -1e-12 || ah > c.ch+1e-12 {
			t.Errorf("ah=%v outside [0,%v]", ah, c.ch)
		}
	}
}

func TestPosWeightImprovesRecall(t *testing.T) {
	x, y := buildBlobs(rand.New(rand.NewSource(51)), 25, 400)

	recallOf := func(posWeight float64) float64 {
		cfg := defaultCfg()
		cfg.PosWeight = posWeight
		res, err := Solve(x, y, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		tp, fn := 0, 0
		for i := 0; i < x.Rows(); i++ {
			if y[i] < 0 {
				continue
			}
			if decision(x, y, res.Alpha, res.B, cfg.Kernel, x, i) > 0 {
				tp++
			} else {
				fn++
			}
		}
		if tp+fn == 0 {
			return 0
		}
		return float64(tp) / float64(tp+fn)
	}
	plain := recallOf(0)
	weighted := recallOf(8)
	if weighted < plain {
		t.Errorf("PosWeight=8 recall %.3f should be ≥ unweighted %.3f", weighted, plain)
	}
	if weighted < 0.8 {
		t.Errorf("weighted recall %.3f too low", weighted)
	}
}

func TestPosWeightKKT(t *testing.T) {
	x, y := buildBlobs(rand.New(rand.NewSource(52)), 30, 200)
	cfg := defaultCfg()
	cfg.PosWeight = 4
	res, err := Solve(x, y, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sumAY float64
	for i, a := range res.Alpha {
		bound := cfg.C
		if y[i] > 0 {
			bound = cfg.C * cfg.PosWeight
		}
		if a < -1e-12 || a > bound+1e-12 {
			t.Fatalf("alpha[%d]=%v outside [0,%v]", i, a, bound)
		}
		sumAY += a * y[i]
	}
	if math.Abs(sumAY) > 1e-9*(1+float64(len(y))) {
		t.Fatalf("Σαy=%v", sumAY)
	}
	// Some positive multiplier should exceed the unweighted bound,
	// proving the wider box is actually used.
	exceeded := false
	for i, a := range res.Alpha {
		if y[i] > 0 && a > cfg.C+1e-9 {
			exceeded = true
			_ = i
		}
	}
	if !exceeded {
		t.Log("no positive multiplier above C (possible but unusual on this data)")
	}
}
