// Package smo implements the Sequential Minimal Optimization solver
// (Alg 1 of the paper; Platt 1999 with Keerthi's dual-threshold
// working-set selection). It is the shared building block of every
// distributed method in internal/core: the paper stresses that all compared
// methods use the same shared-memory SMO underneath, and so does this
// repository.
//
// The solver exposes both a one-shot Solve and the per-iteration primitives
// (LocalExtremes, PairDeltas, ApplyUpdate) that distributed SMO composes
// with allreduce operations.
package smo

import (
	"errors"
	"fmt"
	"math"

	"casvm/internal/kernel"
	"casvm/internal/la"
	"casvm/internal/pool"
	"casvm/internal/trace"
)

// Config carries the solver hyper-parameters.
type Config struct {
	// C is the regularization constant of eqn (2). Must be positive.
	C float64
	// Tol is the KKT tolerance ε; training stops when
	// bLow − bHigh < 2·Tol. Zero means the 1e-3 default.
	Tol float64
	// MaxIter caps iterations; 0 means 100·m + 10000, mirroring common
	// SMO implementations' safety limits.
	MaxIter int
	// CacheRows bounds the kernel-row LRU cache; 0 means min(m, 1024).
	CacheRows int
	// Kernel selects the kernel function.
	Kernel kernel.Params
	// SecondOrder switches working-set selection from the maximal
	// violating pair (Keerthi; the paper's Alg 1) to the second-order
	// rule of Fan, Chen & Lin (2005), which the paper cites in §II-E:
	// the low index is chosen to maximise (bHigh − f_j)²/η. Usually
	// converges in fewer, slightly costlier iterations.
	SecondOrder bool
	// Shrinking enables LIBSVM-style active-set shrinking: bound
	// multipliers that cannot re-enter the working set are dropped from
	// the scans and f-updates, and f is reconstructed exactly before
	// convergence is declared. The solution is unchanged; large problems
	// with many bounded SVs solve with less work.
	Shrinking bool
	// PosWeight scales the box bound of positive samples: C_i = C·PosWeight
	// when y_i = +1 (0 means 1). Raising it counters class imbalance by
	// making positive errors costlier (the usual class-weighted SVM).
	PosWeight float64
	// Threads fans the solver's O(m) inner loop — kernel-row fills, the
	// fused f-update/working-set scan, and the WSS2 second-order scan —
	// across up to this many workers of the shared persistent pool
	// (internal/pool): the shared-memory (OpenMP-style) parallelism the
	// paper layers under MPI. 0 or 1 is serial. Results are bit-identical
	// for every thread count (deterministic chunking plus in-order
	// reductions), so alphas, bias, iteration counts, flops and therefore
	// virtual time are all thread-count-invariant; only wall time
	// improves.
	Threads int
	// Interrupt, when non-nil, is polled with the iteration count before
	// every Solve step; a non-nil return aborts the solve with that
	// error. Fault injection uses it to crash a rank at iteration k even
	// in training phases that never touch the network.
	Interrupt func(iter int) error
	// CheckpointEvery takes a state snapshot every this many iterations
	// (plus one final snapshot at convergence) and hands it to
	// CheckpointSink. 0 — the default — disables checkpointing entirely;
	// the Solve loop then pays a single predictable branch per iteration
	// and the nil-sink hot paths stay allocation-free.
	CheckpointEvery int
	// CheckpointSink receives each snapshot. The snapshot owns its slices,
	// so the sink may retain or serialize it. It runs on the solver's
	// goroutine, before the Interrupt poll of the same iteration — a rank
	// crashed at iteration k has already deposited every checkpoint due at
	// or before k.
	CheckpointSink func(*Checkpoint)
	// Restore, when non-nil, resumes the solve from a snapshot instead of
	// starting at α = 0 (it overrides any warm start). A restored solver
	// replays the exact trajectory of the run that took the snapshot:
	// results and flop charges are bit-identical to never having stopped.
	// A Final snapshot fast-forwards the whole solve.
	Restore *Checkpoint
	// Trace, when non-nil, records per-phase timeline spans (scan, update,
	// shrink, kernel-row fills) into the rank's recorder. Nil — the
	// default — keeps every instrumentation site on the zero-allocation
	// nil-receiver fast path; results are identical either way.
	Trace *trace.Recorder
	// Metrics, when non-nil, receives solver counters at the end of Solve
	// (iterations, row-cache hits/misses). Nil records nothing.
	Metrics *trace.Registry
	// Telemetry, when non-nil, receives one IterSample per applied Solve
	// step (dual objective, KKT gap, active-set/SV counts, shrink sweeps)
	// for live streaming. Nil — the default — skips sampling entirely.
	Telemetry *TelemetryRing
	// TelemetryRank labels this solver's samples in the shared ring
	// (the mpi rank in distributed runs).
	TelemetryRank int

	// disableTilePrefetch turns off the pair prefetch that fills both
	// working-set kernel rows through one shared-streaming tile. Settable
	// only from package tests: the prefetched and unprefetched paths are
	// bit-identical, and the equivalence test needs both.
	disableTilePrefetch bool
}

func (c Config) posWeight() float64 {
	if c.PosWeight <= 0 {
		return 1
	}
	return c.PosWeight
}

func (c Config) tol() float64 {
	if c.Tol <= 0 {
		return 1e-3
	}
	return c.Tol
}

// Result reports a finished training run.
type Result struct {
	Alpha []float64 // Lagrange multipliers, length m
	B     float64   // bias (bHigh+bLow)/2; prediction is sign(Σ αyK − B)
	Iters int       // SMO iterations executed
	Flops float64   // flops spent (kernel rows + updates + scans)
	// Converged is false when MaxIter stopped the solver first.
	Converged bool
}

// SVCount returns the number of nonzero multipliers.
func (r *Result) SVCount() int {
	n := 0
	for _, a := range r.Alpha {
		if a > 0 {
			n++
		}
	}
	return n
}

// Solver holds the mutable optimisation state for one training set.
type Solver struct {
	x   *la.Matrix
	y   []float64
	cfg Config

	alpha []float64
	f     []float64 // f_i of eqn (4)
	cache *kernel.RowCache

	iters int
	flops float64
	// drainedCache remembers how many cache flops TakeFlops has already
	// reported, since the cache counter is cumulative.
	drainedCache float64

	// Shrinking state: the live index set, whether anything is currently
	// shrunk, iterations since the last shrink sweep, and how many sweeps
	// actually removed samples (reported in telemetry).
	active      []int
	shrunk      bool
	sinceShrink int
	shrinkCount int

	// Fused-iteration state: the working-set extremes computed by the last
	// fused update/scan pass (or cached from a plain scan), valid until
	// the next mutation of alpha, f, or the active set. LocalExtremes
	// serves from here when valid, charging the same 2·m the scan it
	// replaces would have, so flop totals match the unfused seed exactly.
	ext      extremes
	extValid bool

	// Parallel scan machinery: the shared worker pool (nil when serial)
	// and per-chunk reduction scratch sized to cfg.Threads.
	pl        *pool.Pool
	chunkExt  []extremes
	chunkGain []gain

	// rec mirrors cfg.Trace for the hot paths; nil means every span call
	// is a single-branch no-op.
	rec *trace.Recorder
}

// New prepares a solver for the given samples and ±1 labels, optionally
// warm-started from inherited multipliers (warm may be nil; otherwise its
// length must equal x.Rows()). Warm starting rebuilds the f vector from the
// nonzero multipliers, which is how Cascade/DC layers inherit state.
func New(x *la.Matrix, y []float64, cfg Config, warm []float64) (*Solver, error) {
	m := x.Rows()
	if len(y) != m {
		return nil, fmt.Errorf("smo: %d samples but %d labels", m, len(y))
	}
	if cfg.C <= 0 {
		return nil, errors.New("smo: C must be positive")
	}
	if err := cfg.Kernel.Validate(); err != nil {
		return nil, err
	}
	for i, v := range y {
		if v != 1 && v != -1 {
			return nil, fmt.Errorf("smo: label[%d]=%v, want ±1", i, v)
		}
	}
	if warm != nil && len(warm) != m {
		return nil, fmt.Errorf("smo: warm start length %d, want %d", len(warm), m)
	}
	cacheRows := cfg.CacheRows
	if cacheRows <= 0 {
		cacheRows = 1024
		if m < cacheRows {
			cacheRows = m
		}
	}
	s := &Solver{
		x:     x,
		y:     y,
		cfg:   cfg,
		alpha: make([]float64, m),
		f:     make([]float64, m),
		cache: kernel.NewRowCache(cfg.Kernel, x, cacheRows),
		rec:   cfg.Trace,
	}
	s.cache.SetThreads(cfg.Threads)
	s.cache.SetRecorder(cfg.Trace)
	if cfg.Threads > 1 {
		s.pl = pool.Shared()
		s.chunkExt = make([]extremes, cfg.Threads)
		s.chunkGain = make([]gain, cfg.Threads)
	}
	// f_i = Σ_j α_j y_j K_ij − y_i ; with α = 0 this is just −y_i.
	for i := range s.f {
		s.f[i] = -y[i]
	}
	if cfg.Restore != nil {
		// Resuming from a snapshot: the checkpoint state supersedes any
		// warm start (the warm-start f rebuild would be discarded anyway,
		// and skipping it keeps restored flop charges honest).
		if err := s.restore(cfg.Restore); err != nil {
			return nil, err
		}
		return s, nil
	}
	if warm != nil {
		copy(s.alpha, warm)
		// Clip inherited multipliers into the feasible box; layer merges
		// can push them slightly outside after float32 wire transfer.
		for i := range s.alpha {
			if s.alpha[i] < 0 {
				s.alpha[i] = 0
			} else if b := s.boundFor(i); s.alpha[i] > b {
				s.alpha[i] = b
			}
		}
		row := make([]float64, m)
		for j := range s.alpha {
			if s.alpha[j] == 0 {
				continue
			}
			s.flops += cfg.Kernel.CrossRow(x, x, j, row)
			coef := s.alpha[j] * y[j]
			la.Axpy(coef, row, s.f)
			s.flops += float64(2 * m)
		}
	}
	return s, nil
}

// M returns the number of training samples.
func (s *Solver) M() int { return len(s.y) }

// Alpha returns the live multiplier vector (owned by the solver).
func (s *Solver) Alpha() []float64 { return s.alpha }

// F returns the live optimality vector f (owned by the solver).
func (s *Solver) F() []float64 { return s.f }

// Iters returns the number of iterations executed so far.
func (s *Solver) Iters() int { return s.iters }

// boundFor returns sample i's box upper bound C_i (class-weighted).
func (s *Solver) boundFor(i int) float64 {
	if s.y[i] > 0 {
		return s.cfg.C * s.cfg.posWeight()
	}
	return s.cfg.C
}

// inHigh reports membership in I_high = {i : (y=+1 ∧ α<C_i) ∨ (y=−1 ∧ α>0)}.
func (s *Solver) inHigh(i int) bool {
	if s.y[i] > 0 {
		return s.alpha[i] < s.boundFor(i)
	}
	return s.alpha[i] > 0
}

// inLow reports membership in I_low = {i : (y=+1 ∧ α>0) ∨ (y=−1 ∧ α<C_i)}.
func (s *Solver) inLow(i int) bool {
	if s.y[i] > 0 {
		return s.alpha[i] > 0
	}
	return s.alpha[i] < s.boundFor(i)
}

// LocalExtremes scans f for the working pair: bHigh = min f over I_high
// (index iHigh) and bLow = max f over I_low (index iLow). Empty sets yield
// +Inf/−Inf with index −1. The scan charges 2·|active| flops and is
// restricted to the active set when shrinking is enabled.
//
// When the fused update pass (or an earlier scan with no intervening
// mutation) already computed the extremes, they are served from cache —
// with the identical 2·|active| charge, so flop totals never depend on
// fusion. The scan itself fans out across the worker pool for large
// problems when cfg.Threads > 1; chunked reduction is bit-identical to
// the serial scan.
func (s *Solver) LocalExtremes() (bHigh float64, iHigh int, bLow float64, iLow int) {
	n := len(s.f)
	if s.cfg.Shrinking && len(s.active) > 0 {
		n = len(s.active)
	}
	if !s.extValid {
		sp := s.rec.Begin(trace.CatSolver, "scan")
		s.setExtremes(s.scanExtremes())
		s.rec.EndFlops(sp, float64(2*n))
	}
	s.flops += float64(2 * n)
	return s.ext.bHigh, s.ext.iHigh, s.ext.bLow, s.ext.iLow
}

// PairUpdate holds the result of optimising one (high, low) pair: the two
// multiplier deltas of eqns (6)–(7).
type PairUpdate struct {
	DAlphaHigh, DAlphaLow float64
}

// PairDeltas solves the two-variable subproblem for local indices iHigh,
// iLow given current bHigh = f[iHigh], bLow = f[iLow], with box clipping.
// It mutates alpha but not f; call UpdateF (or let Step do both).
func (s *Solver) PairDeltas(iHigh, iLow int) PairUpdate {
	yh, yl := s.y[iHigh], s.y[iLow]
	khh := s.cache.Diag(iHigh)
	kll := s.cache.Diag(iLow)
	khl := s.cache.Row(iHigh)[iLow]
	return s.pairDeltasRaw(iHigh, iLow, yh, yl, s.f[iHigh], s.f[iLow], khh, kll, khl)
}

// pairDeltasRaw implements the clipped update given kernel values; split
// out so distributed SMO can pass remotely-computed kernel entries.
func (s *Solver) pairDeltasRaw(iHigh, iLow int, yh, yl, fh, fl, khh, kll, khl float64) PairUpdate {
	s.invalidateExtremes() // alpha changes below shift the Keerthi sets
	ah, al := s.alpha[iHigh], s.alpha[iLow]
	ch, cl := s.boundFor(iHigh), s.boundFor(iLow)
	dah, dal := PairSolveWeighted(ch, cl, yh, yl, fh, fl, ah, al, khh, kll, khl)
	s.alpha[iLow] = s.snapTo(al+dal, cl)
	s.alpha[iHigh] = s.snapTo(math.Min(ch, math.Max(0, ah+dah)), ch)
	return PairUpdate{DAlphaHigh: dah, DAlphaLow: dal}
}

// PairSolve computes the clipped two-variable SMO update of eqns (6)–(7)
// from the pair's labels, optimality values, current multipliers and kernel
// entries, returning (Δα_high, Δα_low). It is a pure function so every rank
// of distributed SMO can evaluate the identical update from broadcast data.
func PairSolve(C, yh, yl, fh, fl, ah, al, khh, kll, khl float64) (dah, dal float64) {
	return PairSolveWeighted(C, C, yh, yl, fh, fl, ah, al, khh, kll, khl)
}

// PairSolveWeighted is PairSolve with per-sample box bounds (class-weighted
// SVM): α_high ∈ [0, ch], α_low ∈ [0, cl].
func PairSolveWeighted(ch, cl, yh, yl, fh, fl, ah, al, khh, kll, khl float64) (dah, dal float64) {
	eta := khh + kll - 2*khl
	if eta <= 1e-12 {
		eta = 1e-12 // keep the step finite for degenerate pairs
	}
	// Unclipped step on α_low (eqn 6), then box constraints from the
	// equality Σαy = 0 restricted to the pair.
	alNew := al + yl*(fh-fl)/eta
	var lo, hi float64
	if yh != yl {
		// α_low − α_high is invariant.
		lo = math.Max(0, al-ah)
		hi = math.Min(cl, ch+al-ah)
	} else {
		// α_low + α_high is invariant.
		lo = math.Max(0, al+ah-ch)
		hi = math.Min(cl, al+ah)
	}
	if alNew < lo {
		alNew = lo
	} else if alNew > hi {
		alNew = hi
	}
	dal = alNew - al
	dah = -yl * yh * dal // eqn (7)
	return dah, dal
}

// snapTo collapses numerical dust at the box edges to exactly 0 or the
// bound c. Without it, a multiplier like 7e-18 keeps its index in the wrong
// Keerthi set and the maximal-violating-pair selection can stall on an
// update that rounds to zero.
func (s *Solver) snapTo(a, c float64) float64 {
	eps := 1e-12 * c
	if a < eps {
		return 0
	}
	if a > c-eps {
		return c
	}
	return a
}

// UpdateF applies eqn (5): f_i += Δα_high·y_high·K(high,i) +
// Δα_low·y_low·K(low,i), using cached rows — over the active set only when
// shrinking is enabled (shrunk entries are reconstructed later).
func (s *Solver) UpdateF(iHigh, iLow int, u PairUpdate) {
	s.invalidateExtremes()
	sp := s.rec.Begin(trace.CatSolver, "update")
	defer s.rec.End(sp)
	if s.cfg.Shrinking && len(s.active) > 0 && s.shrunk {
		ch := u.DAlphaHigh * s.y[iHigh]
		cl := u.DAlphaLow * s.y[iLow]
		rh := s.cache.Row(iHigh)
		for _, i := range s.active {
			s.f[i] += ch * rh[i]
		}
		rl := s.cache.Row(iLow)
		for _, i := range s.active {
			s.f[i] += cl * rl[i]
		}
		s.flops += float64(4 * len(s.active))
		return
	}
	rh := s.cache.Row(iHigh)
	la.Axpy(u.DAlphaHigh*s.y[iHigh], rh, s.f)
	rl := s.cache.Row(iLow)
	la.Axpy(u.DAlphaLow*s.y[iLow], rl, s.f)
	s.flops += float64(4 * len(s.f))
}

// ApplyExternalUpdate is the distributed variant of UpdateF: the high/low
// samples live in ext (a 1- or 2-row matrix) and may not be local rows.
// Local alpha changes (when this rank owns the sample) must be applied
// separately via AddAlpha.
func (s *Solver) ApplyExternalUpdate(ext *la.Matrix, extIdx int, yExt, dAlpha float64, buf []float64) {
	s.invalidateExtremes()
	s.flops += s.cfg.Kernel.CrossRow(s.x, ext, extIdx, buf)
	la.Axpy(dAlpha*yExt, buf[:len(s.f)], s.f)
	s.flops += float64(2 * len(s.f))
}

// ApplyExternalPair applies both halves of a distributed pair update in one
// pass: the two cross-kernel columns are computed by a single fused sweep
// over the local matrix (kernel.Params.CrossRowPair) and f receives both
// axpy contributions in high-then-low order. Results and flop charges are
// bit-identical to ApplyExternalUpdate for the high sample followed by
// ApplyExternalUpdate for the low sample.
func (s *Solver) ApplyExternalPair(extH *la.Matrix, hIdx int, yH, dAH float64,
	extL *la.Matrix, lIdx int, yL, dAL float64, bufH, bufL []float64) {
	s.invalidateExtremes()
	s.flops += s.cfg.Kernel.CrossRowPair(s.x, extH, hIdx, extL, lIdx, bufH, bufL)
	la.Axpy(dAH*yH, bufH[:len(s.f)], s.f)
	s.flops += float64(2 * len(s.f))
	la.Axpy(dAL*yL, bufL[:len(s.f)], s.f)
	s.flops += float64(2 * len(s.f))
}

// AddAlpha adds d to alpha[i], clipping to [0, C_i] and snapping edge dust.
func (s *Solver) AddAlpha(i int, d float64) {
	s.invalidateExtremes()
	a := s.alpha[i] + d
	b := s.boundFor(i)
	s.alpha[i] = s.snapTo(math.Min(b, math.Max(0, a)), b)
}

// Step runs one full local SMO iteration. It returns done=true when the
// stopping criterion held before the update (in which case no update was
// applied).
func (s *Solver) Step() (done bool) {
	if s.cfg.Shrinking {
		return s.stepShrinking()
	}
	bHigh, iHigh, bLow, iLow := s.LocalExtremes()
	if iHigh < 0 || iLow < 0 || bLow-bHigh < 2*s.cfg.tol() {
		return true
	}
	if s.cfg.SecondOrder {
		if j := s.secondOrderLow(iHigh, bHigh); j >= 0 {
			iLow = j
		}
	}
	// Both working-set rows are needed by PairDeltas and the fused update;
	// filling any misses through one tile streams the training matrix once
	// for the pair. Cache state and flops are identical to the demand fills.
	if !s.cfg.disableTilePrefetch {
		s.cache.PrefetchPair(iHigh, iLow)
	}
	u := s.PairDeltas(iHigh, iLow)
	if u.DAlphaHigh == 0 && u.DAlphaLow == 0 {
		// Maximal violating pair cannot move: numerically stuck.
		return true
	}
	s.fusedUpdateScan(iHigh, iLow, u)
	s.iters++
	return false
}

// secondOrderLow implements WSS2: among violating I_low members, pick the
// one maximising the guaranteed objective decrease (bHigh − f_j)²/η_j where
// η_j = K(h,h) + K(j,j) − 2K(h,j). Returns −1 when no violator exists.
// With shrinking enabled, only the active set is scanned (and charged):
// shrunk samples' f entries are stale and must not steer pair selection.
// Large scans fan out across the worker pool with a deterministic
// chunk-ordered reduction.
func (s *Solver) secondOrderLow(iHigh int, bHigh float64) int {
	rowH := s.cache.Row(iHigh)
	khh := s.cache.Diag(iHigh)
	if s.cfg.Shrinking && len(s.active) > 0 {
		act := s.active
		s.flops += float64(5 * len(act))
		if s.pl != nil && len(act) >= 2*scanGrain {
			nc := s.pl.ParallelForChunks(s.cfg.Threads, len(act), scanGrain, func(c, lo, hi int) {
				s.chunkGain[c] = s.gainActive(act[lo:hi], rowH, khh, bHigh)
			})
			return s.reduceGain(nc)
		}
		return s.gainActive(act, rowH, khh, bHigh).j
	}
	n := len(s.f)
	s.flops += float64(5 * n)
	if s.pl != nil && n >= 2*scanGrain {
		nc := s.pl.ParallelForChunks(s.cfg.Threads, n, scanGrain, func(c, lo, hi int) {
			s.chunkGain[c] = s.gainRange(lo, hi, rowH, khh, bHigh)
		})
		return s.reduceGain(nc)
	}
	return s.gainRange(0, n, rowH, khh, bHigh).j
}

// TakeFlops drains the solver's accumulated flop counter (including kernel
// cache misses) and returns it. Distributed callers feed this into the
// virtual clock after each phase.
func (s *Solver) TakeFlops() float64 {
	_, _, cacheFlops := s.cache.Stats()
	f := s.flops + cacheFlops - s.drainedCache
	s.drainedCache = cacheFlops
	s.flops = 0
	return f
}

// Bias returns the Keerthi bias estimate (bHigh+bLow)/2 from the current f.
func (s *Solver) Bias() float64 {
	bHigh, iHigh, bLow, iLow := s.LocalExtremes()
	if iHigh < 0 && iLow < 0 {
		return 0
	}
	if iHigh < 0 {
		return bLow
	}
	if iLow < 0 {
		return bHigh
	}
	return (bHigh + bLow) / 2
}

// Solve runs SMO to convergence and returns the result. x and y are as in
// New.
func Solve(x *la.Matrix, y []float64, cfg Config, warm []float64) (*Result, error) {
	s, err := New(x, y, cfg, warm)
	if err != nil {
		return nil, err
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = 100*x.Rows() + 10000
	}
	converged := false
	if cfg.Restore != nil && cfg.Restore.Final {
		// The snapshot was taken after convergence: fast-forward. The bias
		// recomputation below reads the restored f, so the result matches
		// the original solve exactly.
		converged = true
	}
	lastCkpt := -1
	if cfg.Restore != nil {
		lastCkpt = cfg.Restore.Iters // don't immediately re-deposit the restore point
	}
	for !converged && s.iters < maxIter {
		if cfg.CheckpointEvery > 0 && cfg.CheckpointSink != nil &&
			s.iters > 0 && s.iters%cfg.CheckpointEvery == 0 && s.iters != lastCkpt {
			lastCkpt = s.iters
			cfg.CheckpointSink(s.Snapshot())
		}
		if cfg.Interrupt != nil {
			if err := cfg.Interrupt(s.iters); err != nil {
				return nil, err
			}
		}
		if s.Step() {
			converged = true
			break
		}
		if cfg.Telemetry != nil {
			s.sampleTelemetry()
		}
	}
	if converged && cfg.CheckpointEvery > 0 && cfg.CheckpointSink != nil &&
		!(cfg.Restore != nil && cfg.Restore.Final) {
		// Final snapshot: a replay after a later crash skips this solve.
		ck := s.Snapshot()
		ck.Final = true
		cfg.CheckpointSink(ck)
	}
	b := s.Bias()
	s.recordMetrics()
	return &Result{
		Alpha:     s.alpha,
		B:         b,
		Iters:     s.iters,
		Flops:     s.TakeFlops(),
		Converged: converged,
	}, nil
}

// recordMetrics publishes end-of-solve counters (iterations, row-cache
// hits/misses — the hit rate is their ratio) into cfg.Metrics; a nil
// registry records nothing.
func (s *Solver) recordMetrics() {
	reg := s.cfg.Metrics
	if reg == nil {
		return
	}
	hits, misses, _ := s.cache.Stats()
	reg.Counter("smo_iterations_total", "SMO iterations executed").Add(int64(s.iters))
	reg.Counter("smo_row_cache_hits_total", "kernel row-cache hits").Add(hits)
	reg.Counter("smo_row_cache_misses_total", "kernel row-cache misses").Add(misses)
}
