package smo

import (
	"math/rand"
	"testing"
)

// SMO theory: every successful pair update strictly increases the dual
// objective F(α). Violations indicate a broken update rule.
func TestDualObjectiveMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	x, y := twoBlobs(rng, 40, 1.2, 1.0)
	s, err := New(x, y, defaultCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	prev := s.Objective()
	for i := 0; i < 200; i++ {
		if s.Step() {
			break
		}
		cur := s.Objective()
		if cur < prev-1e-9 {
			t.Fatalf("iteration %d: objective fell %v -> %v", s.Iters(), prev, cur)
		}
		prev = cur
	}
	if s.Iters() < 10 {
		t.Fatalf("too few iterations (%d) to be meaningful", s.Iters())
	}
}

// The same invariant must hold for the optional selection rules.
func TestDualObjectiveMonotoneVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	x, y := twoBlobs(rng, 35, 1.0, 1.0)
	for _, cfgMod := range []func(*Config){
		func(c *Config) { c.SecondOrder = true },
		func(c *Config) { c.Shrinking = true },
		func(c *Config) { c.PosWeight = 3 },
	} {
		cfg := defaultCfg()
		cfgMod(&cfg)
		s, err := New(x, y, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		prev := s.Objective()
		for i := 0; i < 150; i++ {
			if s.Step() {
				break
			}
			cur := s.Objective()
			if cur < prev-1e-9 {
				t.Fatalf("cfg %+v: objective fell %v -> %v at iter %d", cfg, prev, cur, s.Iters())
			}
			prev = cur
		}
	}
}

// Zero multipliers give objective zero; a solved problem gives a positive
// objective.
func TestDualObjectiveValues(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	x, y := twoBlobs(rng, 30, 2, 0.5)
	cfg := defaultCfg()
	s, err := New(x, y, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Objective(); got != 0 {
		t.Fatalf("initial objective %v", got)
	}
	res, err := Solve(x, y, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := DualObjective(x, y, res.Alpha, cfg.Kernel); got <= 0 {
		t.Fatalf("solved objective %v should be positive", got)
	}
}
