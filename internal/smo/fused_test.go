package smo

import (
	"math/rand"
	"runtime"
	"testing"

	"casvm/internal/kernel"
	"casvm/internal/la"
)

// refStep replicates the seed's unfused iteration: a fresh LocalExtremes
// scan, optional WSS2, PairDeltas, then the two-axpy UpdateF. Because
// UpdateF invalidates the cached extremes, LocalExtremes rescans every
// iteration — exactly the pre-fusion control flow and flop charges.
func refStep(s *Solver) (done bool) {
	if s.cfg.Shrinking {
		return refStepShrinking(s)
	}
	bHigh, iHigh, bLow, iLow := s.LocalExtremes()
	if iHigh < 0 || iLow < 0 || bLow-bHigh < 2*s.cfg.tol() {
		return true
	}
	if s.cfg.SecondOrder {
		if j := s.secondOrderLow(iHigh, bHigh); j >= 0 {
			iLow = j
		}
	}
	u := s.PairDeltas(iHigh, iLow)
	if u.DAlphaHigh == 0 && u.DAlphaLow == 0 {
		return true
	}
	s.UpdateF(iHigh, iLow, u)
	s.iters++
	return false
}

// refStepShrinking is the seed's stepShrinking with the unfused UpdateF.
func refStepShrinking(s *Solver) (done bool) {
	if len(s.active) == 0 {
		s.initActive()
	}
	if s.sinceShrink >= s.shrinkEvery() {
		s.shrink()
		s.sinceShrink = 0
	}
	bHigh, iHigh, bLow, iLow := s.LocalExtremes()
	if iHigh < 0 || iLow < 0 || bLow-bHigh < 2*s.cfg.tol() {
		if s.shrunk {
			s.reconstructAndActivate()
			bHigh, iHigh, bLow, iLow = s.LocalExtremes()
			if iHigh < 0 || iLow < 0 || bLow-bHigh < 2*s.cfg.tol() {
				return true
			}
		} else {
			return true
		}
	}
	if s.cfg.SecondOrder {
		if j := s.secondOrderLow(iHigh, bHigh); j >= 0 {
			iLow = j
		}
	}
	u := s.PairDeltas(iHigh, iLow)
	if u.DAlphaHigh == 0 && u.DAlphaLow == 0 {
		return true
	}
	s.UpdateF(iHigh, iLow, u)
	s.iters++
	s.sinceShrink++
	return false
}

// refSolve drives refStep through the same loop as Solve.
func refSolve(t *testing.T, x *la.Matrix, y []float64, cfg Config) *Result {
	t.Helper()
	s, err := New(x, y, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = 100*x.Rows() + 10000
	}
	converged := false
	for s.iters < maxIter {
		if refStep(s) {
			converged = true
			break
		}
	}
	b := s.Bias()
	return &Result{Alpha: s.alpha, B: b, Iters: s.iters, Flops: s.TakeFlops(), Converged: converged}
}

// requireIdentical asserts two results match bit for bit: multipliers,
// bias, iteration count, and the virtual-time flop total.
func requireIdentical(t *testing.T, name string, a, b *Result) {
	t.Helper()
	if a.Iters != b.Iters {
		t.Fatalf("%s: iters %d vs %d", name, a.Iters, b.Iters)
	}
	if a.B != b.B {
		t.Fatalf("%s: bias %v vs %v", name, a.B, b.B)
	}
	if a.Flops != b.Flops {
		t.Fatalf("%s: flops %v vs %v", name, a.Flops, b.Flops)
	}
	if a.Converged != b.Converged {
		t.Fatalf("%s: converged %v vs %v", name, a.Converged, b.Converged)
	}
	for i := range a.Alpha {
		if a.Alpha[i] != b.Alpha[i] {
			t.Fatalf("%s: alpha[%d] %v vs %v", name, i, a.Alpha[i], b.Alpha[i])
		}
	}
}

func sparseCopy(de *la.Matrix) *la.Matrix {
	m, n := de.Rows(), de.Features()
	rp := make([]int32, m+1)
	var ix []int32
	var vx []float64
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if v := de.At(i, j); v != 0 {
				ix = append(ix, int32(j))
				vx = append(vx, v)
			}
		}
		rp[i+1] = int32(len(ix))
	}
	return la.NewSparse(m, n, rp, ix, vx)
}

// TestFusedMatchesUnfused proves the fused update/scan pass reproduces the
// seed's separate-pass solver exactly — values, iteration counts, and flop
// totals — across kernel selection modes and both storage formats.
func TestFusedMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	de, y := twoBlobs(rng, 150, 2, 0.9)
	sp := sparseCopy(de)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"first-order", Config{C: 1, Tol: 1e-3, Kernel: kernel.RBF(0.5)}},
		{"wss2", Config{C: 1, Tol: 1e-3, Kernel: kernel.RBF(0.5), SecondOrder: true}},
		{"shrinking", Config{C: 1, Tol: 1e-3, Kernel: kernel.RBF(0.5), Shrinking: true}},
		{"wss2-shrinking", Config{C: 1, Tol: 1e-3, Kernel: kernel.RBF(0.5), SecondOrder: true, Shrinking: true}},
		{"weighted", Config{C: 1, Tol: 1e-3, Kernel: kernel.RBF(0.5), PosWeight: 2.5}},
		{"small-cache", Config{C: 1, Tol: 1e-3, Kernel: kernel.RBF(0.5), CacheRows: 8, SecondOrder: true}},
	}
	for _, tc := range cases {
		for _, mat := range []struct {
			name string
			x    *la.Matrix
		}{{"dense", de}, {"sparse", sp}} {
			want := refSolve(t, mat.x, y, tc.cfg)
			got, err := Solve(mat.x, y, tc.cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, tc.name+"/"+mat.name, got, want)
		}
	}
}

// TestThreadCountInvariance is the acceptance gate: the solver must emit
// bit-identical multipliers, bias, iteration counts, and flop totals for
// every Threads setting. m = 4096 clears the 2·scanGrain threshold, so
// Threads=4 actually exercises the chunked pool scans (deterministic
// chunk-ordered reduction) rather than the serial fallback.
func TestThreadCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	x, y := twoBlobs(rng, 2048, 2, 1.0)
	base := Config{C: 1, Tol: 1e-3, Kernel: kernel.RBF(0.5), MaxIter: 120, SecondOrder: true}
	ref, err := Solve(x, y, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 2, 4} {
		cfg := base
		cfg.Threads = threads
		got, err := Solve(x, y, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, "threads=4", got, ref)
		_ = threads
	}
	// And under shrinking, where the scans run over the active set.
	shr := base
	shr.Shrinking = true
	refS, err := Solve(x, y, shr, nil)
	if err != nil {
		t.Fatal(err)
	}
	shr.Threads = 4
	gotS, err := Solve(x, y, shr, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "shrinking-threads", gotS, refS)
}

// TestParallelMatchesReferenceLarge: pool-parallel fused solve vs the
// unfused serial reference on a pool-sized problem. Run under -race this
// also exercises the worker-pool scan paths for data races.
func TestParallelMatchesReferenceLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	x, y := twoBlobs(rng, 2048, 2, 0.8)
	cfg := Config{C: 1, Tol: 1e-3, Kernel: kernel.RBF(0.5), MaxIter: 80, SecondOrder: true}
	want := refSolve(t, x, y, cfg)
	cfg.Threads = 4
	got, err := Solve(x, y, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "parallel-vs-serial-ref", got, want)
}

func benchBlobs(m int) (*la.Matrix, []float64) {
	rng := rand.New(rand.NewSource(7))
	return twoBlobs(rng, m/2, 2, 1.2)
}

// BenchmarkSolve measures the full fused SMO hot path on an RBF problem at
// the acceptance size m=4096 (iteration-capped so op time stays bounded).
// Threads follows the -cpu setting, so `-cpu 1,4` contrasts the serial and
// pool-parallel paths on multicore machines; results are bit-identical
// either way.
func BenchmarkSolve(b *testing.B) {
	x, y := benchBlobs(4096)
	cfg := Config{C: 1, Tol: 1e-3, Kernel: kernel.RBF(0.5), MaxIter: 60, SecondOrder: true,
		Threads: runtime.GOMAXPROCS(0)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(x, y, cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUpdateScanFused compares one fused update+scan pass against the
// seed's separate UpdateF + LocalExtremes passes over the same state.
func BenchmarkUpdateScanFused(b *testing.B) {
	x, y := benchBlobs(4096)
	cfg := Config{C: 1, Tol: 1e-3, Kernel: kernel.RBF(0.5)}
	mk := func(b *testing.B) *Solver {
		s, err := New(x, y, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		s.cache.Row(0) // warm the two rows the passes touch
		s.cache.Row(1)
		return s
	}
	// Zero deltas keep f fixed across iterations while costing the same
	// arithmetic as a real update.
	u := PairUpdate{}
	b.Run("fused", func(b *testing.B) {
		s := mk(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.fusedUpdateScan(0, 1, u)
		}
	})
	b.Run("unfused", func(b *testing.B) {
		s := mk(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.UpdateF(0, 1, u)
			s.LocalExtremes()
		}
	})
}
