package smo

import (
	"math"
	"runtime"
	"testing"

	"casvm/internal/kernel"
)

// collectCheckpoints runs Solve with a sink every k iterations and returns
// the result plus every snapshot taken (the last one marked Final).
func collectCheckpoints(t testing.TB, cfg Config, k int) (*Result, []*Checkpoint) {
	t.Helper()
	x, y := benchBlobs(512)
	var cks []*Checkpoint
	cfg.CheckpointEvery = k
	cfg.CheckpointSink = func(ck *Checkpoint) { cks = append(cks, ck) }
	res, err := Solve(x, y, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res, cks
}

func requireSameSolution(t *testing.T, name string, got, want *Result) {
	t.Helper()
	if got.Iters != want.Iters {
		t.Fatalf("%s: iters %d vs %d", name, got.Iters, want.Iters)
	}
	if got.B != want.B {
		t.Fatalf("%s: bias %v vs %v", name, got.B, want.B)
	}
	if got.Converged != want.Converged {
		t.Fatalf("%s: converged %v vs %v", name, got.Converged, want.Converged)
	}
	for i := range want.Alpha {
		if got.Alpha[i] != want.Alpha[i] {
			t.Fatalf("%s: alpha[%d] %v vs %v", name, i, got.Alpha[i], want.Alpha[i])
		}
	}
}

// TestCheckpointResumeBitIdentical is the core restart guarantee: resuming
// from any mid-solve snapshot reproduces the uninterrupted trajectory
// exactly — same iterations, same multipliers bit for bit, same bias.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"first-order", Config{C: 1, Tol: 1e-3, Kernel: kernel.RBF(0.5)}},
		{"second-order", Config{C: 1, Tol: 1e-3, Kernel: kernel.RBF(0.5), SecondOrder: true}},
		{"shrinking", Config{C: 1, Tol: 1e-3, Kernel: kernel.RBF(0.5), SecondOrder: true, Shrinking: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, cks := collectCheckpoints(t, tc.cfg, 25)
			if len(cks) < 2 {
				t.Fatalf("only %d checkpoints taken; need a mid-solve one", len(cks))
			}
			x, y := benchBlobs(512)
			for _, ck := range cks {
				if ck.Final {
					continue
				}
				cfg := tc.cfg
				cfg.Restore = ck
				got, err := Solve(x, y, cfg, nil)
				if err != nil {
					t.Fatal(err)
				}
				requireSameSolution(t, tc.name, got, want)
			}
		})
	}
}

// TestCheckpointFinalFastForward: restoring a Final snapshot skips the solve
// entirely and still yields the converged solution.
func TestCheckpointFinalFastForward(t *testing.T) {
	cfg := Config{C: 1, Tol: 1e-3, Kernel: kernel.RBF(0.5), SecondOrder: true}
	want, cks := collectCheckpoints(t, cfg, 25)
	last := cks[len(cks)-1]
	if !last.Final {
		t.Fatal("last checkpoint not marked Final")
	}
	x, y := benchBlobs(512)
	cfg.Restore = last
	got, err := Solve(x, y, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireSameSolution(t, "final-fast-forward", got, want)
	// The only work left is the bias scan over f (2·m flops) — no
	// iterations, no kernel rows.
	if maxFlops := 2 * float64(len(y)); got.Flops > maxFlops {
		t.Fatalf("fast-forward performed %v flops, want ≤ %v (one bias scan)", got.Flops, maxFlops)
	}
}

// TestCheckpointEncodeRoundTrip pins the wire format: Encode→Decode is the
// identity, Bytes predicts the encoded size, and every float survives at
// full precision.
func TestCheckpointEncodeRoundTrip(t *testing.T) {
	cfg := Config{C: 1, Tol: 1e-3, Kernel: kernel.RBF(0.5), Shrinking: true, SecondOrder: true}
	_, cks := collectCheckpoints(t, cfg, 25)
	for _, ck := range cks {
		buf := ck.Encode()
		if len(buf) != ck.Bytes() {
			t.Fatalf("Bytes()=%d but Encode produced %d", ck.Bytes(), len(buf))
		}
		got, err := DecodeCheckpoint(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Iters != ck.Iters || got.Final != ck.Final || got.Shrunk != ck.Shrunk ||
			got.SinceShrink != ck.SinceShrink || got.ShrinkCount != ck.ShrinkCount {
			t.Fatalf("scalar mismatch: %+v vs %+v", got, ck)
		}
		for i := range ck.Alpha {
			if math.Float64bits(got.Alpha[i]) != math.Float64bits(ck.Alpha[i]) ||
				math.Float64bits(got.F[i]) != math.Float64bits(ck.F[i]) {
				t.Fatalf("vector mismatch at %d", i)
			}
		}
		if len(got.Active) != len(ck.Active) {
			t.Fatalf("active set %d vs %d", len(got.Active), len(ck.Active))
		}
		for i := range ck.Active {
			if got.Active[i] != ck.Active[i] {
				t.Fatalf("active[%d] %d vs %d", i, got.Active[i], ck.Active[i])
			}
		}
	}
}

// TestCheckpointDecodeRejectsGarbage: corrupt headers and truncations fail
// loudly instead of restoring nonsense.
func TestCheckpointDecodeRejectsGarbage(t *testing.T) {
	cfg := Config{C: 1, Tol: 1e-3, Kernel: kernel.RBF(0.5)}
	_, cks := collectCheckpoints(t, cfg, 25)
	buf := cks[0].Encode()
	if _, err := DecodeCheckpoint([]byte("not a checkpoint at all")); err == nil {
		t.Fatal("bad magic accepted")
	}
	for _, n := range []int{len(ckptMagic), len(ckptMagic) + 10, len(buf) / 2, len(buf) - 1} {
		if _, err := DecodeCheckpoint(buf[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

// TestCheckpointRestoreValidates: a snapshot from a different problem size
// is rejected.
func TestCheckpointRestoreValidates(t *testing.T) {
	cfg := Config{C: 1, Tol: 1e-3, Kernel: kernel.RBF(0.5)}
	_, cks := collectCheckpoints(t, cfg, 25) // m=512 snapshots
	x, y := benchBlobs(128)
	cfg.Restore = cks[0]
	if _, err := Solve(x, y, cfg, nil); err == nil {
		t.Fatal("mismatched checkpoint accepted")
	}
}

// BenchmarkSolveCheckpointed is BenchmarkSolve with snapshots every 16
// iterations — compare against BenchmarkSolve to price the checkpoint
// cadence (snapshot copies; the sink discards).
func BenchmarkSolveCheckpointed(b *testing.B) {
	x, y := benchBlobs(4096)
	cfg := Config{C: 1, Tol: 1e-3, Kernel: kernel.RBF(0.5), MaxIter: 60, SecondOrder: true,
		Threads: runtime.GOMAXPROCS(0)}
	cfg.CheckpointEvery = 16
	cfg.CheckpointSink = func(ck *Checkpoint) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(x, y, cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}
