package smo

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Checkpoint is a deterministic snapshot of a solver's optimisation state:
// everything Restore needs to resume the exact trajectory from iteration
// Iters. The kernel-row cache is deliberately excluded — it is a pure
// performance artifact, and LocalExtremes charges the same 2·|active| flops
// whether the extremes come from the fused cache or a fresh scan, so a
// restored solver is bit- and flop-identical to one that never stopped.
type Checkpoint struct {
	// Iters is the iteration count the snapshot was taken at.
	Iters int
	// Final marks a snapshot taken after convergence: restoring it lets
	// Solve fast-forward the whole solve (replay after a crash skips
	// completed work entirely).
	Final bool

	// Alpha and F are the dual multipliers and optimality values, length m.
	Alpha []float64
	F     []float64

	// Shrinking state (nil Active when shrinking is off or the active set
	// was never initialised).
	Active      []int32
	Shrunk      bool
	SinceShrink int
	ShrinkCount int
}

// Clone returns a deep copy.
func (ck *Checkpoint) Clone() *Checkpoint {
	out := *ck
	out.Alpha = append([]float64(nil), ck.Alpha...)
	out.F = append([]float64(nil), ck.F...)
	out.Active = append([]int32(nil), ck.Active...)
	return &out
}

// Snapshot captures the solver's current state as a Checkpoint. The
// returned snapshot owns its slices (the solver keeps mutating the live
// state), so it can be stored or serialized freely.
func (s *Solver) Snapshot() *Checkpoint {
	ck := &Checkpoint{
		Iters:       s.iters,
		Alpha:       append([]float64(nil), s.alpha...),
		F:           append([]float64(nil), s.f...),
		Shrunk:      s.shrunk,
		SinceShrink: s.sinceShrink,
		ShrinkCount: s.shrinkCount,
	}
	if s.cfg.Shrinking && len(s.active) > 0 {
		ck.Active = make([]int32, len(s.active))
		for i, v := range s.active {
			ck.Active[i] = int32(v)
		}
	}
	return ck
}

// restore overwrites the solver's state from a checkpoint (called by New
// when cfg.Restore is set). The cached working-set extremes are left
// invalid, so the next LocalExtremes performs a fresh scan — which charges
// exactly what the fused cache it replaces would have, keeping restored
// runs flop-identical to uninterrupted ones.
func (s *Solver) restore(ck *Checkpoint) error {
	m := len(s.y)
	if len(ck.Alpha) != m || len(ck.F) != m {
		return fmt.Errorf("smo: checkpoint for %d samples, solver has %d", len(ck.Alpha), m)
	}
	copy(s.alpha, ck.Alpha)
	copy(s.f, ck.F)
	s.iters = ck.Iters
	s.shrunk = ck.Shrunk
	s.sinceShrink = ck.SinceShrink
	s.shrinkCount = ck.ShrinkCount
	if ck.Active != nil {
		s.active = s.active[:0]
		for _, v := range ck.Active {
			if int(v) < 0 || int(v) >= m {
				return fmt.Errorf("smo: checkpoint active index %d outside [0,%d)", v, m)
			}
			s.active = append(s.active, int(v))
		}
	}
	s.invalidateExtremes()
	return nil
}

// ckptMagic heads the serialized checkpoint format.
const ckptMagic = "casvm-ckpt v1\n"

// Encode serializes the checkpoint with the repository's little-endian
// wire conventions (the same layout style internal/model uses): a magic
// header, fixed-width scalars, then the float64 vectors at full precision
// — snapshots must be exact for restored trajectories to be bit-identical.
func (ck *Checkpoint) Encode() []byte {
	m := len(ck.Alpha)
	buf := make([]byte, 0, len(ckptMagic)+4+8+1+8+8+16*m+4+4*len(ck.Active))
	buf = append(buf, ckptMagic...)
	var flags byte
	if ck.Final {
		flags |= 1
	}
	if ck.Shrunk {
		flags |= 2
	}
	if ck.Active != nil {
		flags |= 4
	}
	buf = append(buf, flags)
	var w [8]byte
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		buf = append(buf, w[:]...)
	}
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(w[:4], v)
		buf = append(buf, w[:4]...)
	}
	put32(uint32(m))
	put64(uint64(ck.Iters))
	put64(uint64(ck.SinceShrink))
	put64(uint64(ck.ShrinkCount))
	for _, v := range ck.Alpha {
		put64(math.Float64bits(v))
	}
	for _, v := range ck.F {
		put64(math.Float64bits(v))
	}
	put32(uint32(len(ck.Active)))
	for _, v := range ck.Active {
		put32(uint32(v))
	}
	return buf
}

// DecodeCheckpoint parses a buffer produced by Encode.
func DecodeCheckpoint(buf []byte) (*Checkpoint, error) {
	if len(buf) < len(ckptMagic) || string(buf[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("smo: not a checkpoint (bad magic)")
	}
	buf = buf[len(ckptMagic):]
	need := func(n int) error {
		if len(buf) < n {
			return fmt.Errorf("smo: truncated checkpoint")
		}
		return nil
	}
	if err := need(1 + 4 + 24); err != nil {
		return nil, err
	}
	flags := buf[0]
	buf = buf[1:]
	m := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if m < 0 || m > 1<<28 {
		return nil, fmt.Errorf("smo: checkpoint claims %d samples", m)
	}
	ck := &Checkpoint{
		Final:  flags&1 != 0,
		Shrunk: flags&2 != 0,
	}
	ck.Iters = int(binary.LittleEndian.Uint64(buf))
	ck.SinceShrink = int(binary.LittleEndian.Uint64(buf[8:]))
	ck.ShrinkCount = int(binary.LittleEndian.Uint64(buf[16:]))
	buf = buf[24:]
	if err := need(16 * m); err != nil {
		return nil, err
	}
	ck.Alpha = make([]float64, m)
	ck.F = make([]float64, m)
	for i := range ck.Alpha {
		ck.Alpha[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	buf = buf[8*m:]
	for i := range ck.F {
		ck.F[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	buf = buf[8*m:]
	if err := need(4); err != nil {
		return nil, err
	}
	na := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if na < 0 || na > m {
		return nil, fmt.Errorf("smo: checkpoint active set of %d in %d samples", na, m)
	}
	if flags&4 != 0 {
		if err := need(4 * na); err != nil {
			return nil, err
		}
		ck.Active = make([]int32, na)
		for i := range ck.Active {
			ck.Active[i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
		}
	}
	return ck, nil
}

// Bytes reports the serialized size of the checkpoint without encoding it,
// for cost accounting (the α–β model charges the write to stable store
// like any other transfer of this many bytes).
func (ck *Checkpoint) Bytes() int {
	return len(ckptMagic) + 1 + 4 + 24 + 16*len(ck.Alpha) + 4 + 4*len(ck.Active)
}
