package smo

import (
	"casvm/internal/kernel"
	"casvm/internal/la"
)

// DualObjective evaluates eqn (1) of the paper,
//
//	F(α) = Σᵢ αᵢ − ½ ΣᵢΣⱼ αᵢαⱼyᵢyⱼK(i,j),
//
// the quantity SMO maximises. It costs O(s²) kernel evaluations over the
// support vectors, so it is a diagnostic, not a per-iteration tool. SMO
// theory guarantees F strictly increases on every successful pair update —
// the test suite uses that as a correctness invariant.
func DualObjective(x *la.Matrix, y, alpha []float64, k kernel.Params) float64 {
	sv := make([]int, 0)
	for i, a := range alpha {
		if a != 0 {
			sv = append(sv, i)
		}
	}
	var sum, quad float64
	for _, i := range sv {
		sum += alpha[i]
		for _, j := range sv {
			quad += alpha[i] * alpha[j] * y[i] * y[j] * k.Eval(x, i, x, j)
		}
	}
	return sum - quad/2
}

// Objective evaluates the solver's current dual objective.
func (s *Solver) Objective() float64 {
	return DualObjective(s.x, s.y, s.alpha, s.cfg.Kernel)
}
