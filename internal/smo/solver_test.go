package smo

import (
	"math"
	"math/rand"
	"testing"

	"casvm/internal/kernel"
	"casvm/internal/la"
)

// twoBlobs builds a 2-D two-class Gaussian blob dataset: class +1 around
// (+d, +d), class −1 around (−d, −d).
func twoBlobs(rng *rand.Rand, mPerClass int, d, noise float64) (*la.Matrix, []float64) {
	m := 2 * mPerClass
	data := make([]float64, 0, m*2)
	y := make([]float64, 0, m)
	for i := 0; i < mPerClass; i++ {
		data = append(data, d+noise*rng.NormFloat64(), d+noise*rng.NormFloat64())
		y = append(y, 1)
		data = append(data, -d+noise*rng.NormFloat64(), -d+noise*rng.NormFloat64())
		y = append(y, -1)
	}
	return la.NewDense(m, 2, data), y
}

// decision evaluates Σ αᵢyᵢK(x, xᵢ) − b for row q of the query matrix.
func decision(x *la.Matrix, y, alpha []float64, b float64, k kernel.Params, q *la.Matrix, qi int) float64 {
	var s float64
	for i := 0; i < x.Rows(); i++ {
		if alpha[i] == 0 {
			continue
		}
		s += alpha[i] * y[i] * k.Eval(x, i, q, qi)
	}
	return s - b
}

func defaultCfg() Config {
	return Config{C: 1, Tol: 1e-3, Kernel: kernel.RBF(0.5)}
}

func TestSolveSeparableBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := twoBlobs(rng, 50, 2, 0.5)
	res, err := Solve(x, y, defaultCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("should converge")
	}
	if res.Iters <= 0 {
		t.Fatal("no iterations")
	}
	correct := 0
	for i := 0; i < x.Rows(); i++ {
		d := decision(x, y, res.Alpha, res.B, defaultCfg().Kernel, x, i)
		if (d > 0) == (y[i] > 0) {
			correct++
		}
	}
	if acc := float64(correct) / float64(x.Rows()); acc < 0.98 {
		t.Errorf("training accuracy %.3f < 0.98", acc)
	}
	if res.SVCount() == 0 || res.SVCount() == x.Rows() {
		t.Errorf("SV count %d should be a strict subset for separable data", res.SVCount())
	}
}

func TestSolveXORWithRBF(t *testing.T) {
	// XOR pattern: not linearly separable; RBF must handle it.
	data := []float64{
		1, 1, -1, -1, 1, -1, -1, 1,
	}
	x := la.NewDense(4, 2, data)
	y := []float64{1, 1, -1, -1}
	cfg := Config{C: 10, Tol: 1e-4, Kernel: kernel.RBF(1)}
	res, err := Solve(x, y, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		d := decision(x, y, res.Alpha, res.B, cfg.Kernel, x, i)
		if (d > 0) != (y[i] > 0) {
			t.Errorf("XOR point %d misclassified (d=%v y=%v)", i, d, y[i])
		}
	}
}

func TestLinearKernelSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := twoBlobs(rng, 40, 3, 0.3)
	cfg := Config{C: 1, Kernel: kernel.Params{Kind: kernel.Linear}}
	res, err := Solve(x, y, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < x.Rows(); i++ {
		d := decision(x, y, res.Alpha, res.B, cfg.Kernel, x, i)
		if (d > 0) == (y[i] > 0) {
			correct++
		}
	}
	if acc := float64(correct) / float64(x.Rows()); acc < 0.97 {
		t.Errorf("linear training accuracy %.3f", acc)
	}
}

// KKT feasibility: the trained multipliers must satisfy the box and
// equality constraints of eqn (2), and the duality gap must respect Tol —
// checked against a *recomputed* f so incremental-maintenance bugs show.
func TestKKTConditions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		x, y := twoBlobs(rng, 30+10*trial, 1.5, 0.8)
		cfg := Config{C: 0.5 + float64(trial)*0.5, Tol: 1e-3, Kernel: kernel.RBF(0.7)}
		res, err := Solve(x, y, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		var sumAY float64
		for i, a := range res.Alpha {
			if a < -1e-12 || a > cfg.C+1e-12 {
				t.Fatalf("trial %d: alpha[%d]=%v outside [0,%v]", trial, i, a, cfg.C)
			}
			sumAY += a * y[i]
		}
		if math.Abs(sumAY) > 1e-9*(1+cfg.C*float64(len(y))) {
			t.Fatalf("trial %d: Σαy=%v violated", trial, sumAY)
		}
		// Recompute f from scratch and verify the dual thresholds.
		m := x.Rows()
		f := make([]float64, m)
		for i := 0; i < m; i++ {
			var s float64
			for j := 0; j < m; j++ {
				if res.Alpha[j] != 0 {
					s += res.Alpha[j] * y[j] * cfg.Kernel.Eval(x, i, x, j)
				}
			}
			f[i] = s - y[i]
		}
		bHigh, bLow := math.Inf(1), math.Inf(-1)
		for i := 0; i < m; i++ {
			inHigh := (y[i] > 0 && res.Alpha[i] < cfg.C-1e-9) || (y[i] < 0 && res.Alpha[i] > 1e-9)
			inLow := (y[i] > 0 && res.Alpha[i] > 1e-9) || (y[i] < 0 && res.Alpha[i] < cfg.C-1e-9)
			if inHigh && f[i] < bHigh {
				bHigh = f[i]
			}
			if inLow && f[i] > bLow {
				bLow = f[i]
			}
		}
		if gap := bLow - bHigh; gap > 2*cfg.Tol+1e-6 {
			t.Fatalf("trial %d: duality gap %v exceeds 2·tol", trial, gap)
		}
	}
}

func TestWarmStartConvergesFast(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := twoBlobs(rng, 60, 1.5, 0.7)
	cfg := defaultCfg()
	cold, err := Solve(x, y, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Solve(x, y, cfg, cold.Alpha)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iters > cold.Iters/5+5 {
		t.Errorf("warm start took %d iters vs cold %d", warm.Iters, cold.Iters)
	}
}

func TestWarmStartClipsOutOfBox(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := twoBlobs(rng, 10, 2, 0.3)
	warm := make([]float64, x.Rows())
	for i := range warm {
		warm[i] = 5 // way above C=1
	}
	s, err := New(x, y, defaultCfg(), warm)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range s.Alpha() {
		if a < 0 || a > 1 {
			t.Fatalf("alpha[%d]=%v not clipped", i, a)
		}
	}
}

func TestSingleClassInput(t *testing.T) {
	x := la.NewDense(4, 1, []float64{1, 2, 3, 4})
	y := []float64{1, 1, 1, 1}
	res, err := Solve(x, y, defaultCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 0 || res.SVCount() != 0 {
		t.Errorf("single-class should converge immediately: iters=%d svs=%d", res.Iters, res.SVCount())
	}
}

func TestValidation(t *testing.T) {
	x := la.NewDense(2, 1, []float64{1, 2})
	if _, err := Solve(x, []float64{1}, defaultCfg(), nil); err == nil {
		t.Error("label length mismatch should fail")
	}
	if _, err := Solve(x, []float64{1, 0.5}, defaultCfg(), nil); err == nil {
		t.Error("non-±1 label should fail")
	}
	cfg := defaultCfg()
	cfg.C = 0
	if _, err := Solve(x, []float64{1, -1}, cfg, nil); err == nil {
		t.Error("C=0 should fail")
	}
	cfg = defaultCfg()
	cfg.Kernel = kernel.Params{Kind: kernel.Gaussian} // gamma 0
	if _, err := Solve(x, []float64{1, -1}, cfg, nil); err == nil {
		t.Error("invalid kernel should fail")
	}
	if _, err := Solve(x, []float64{1, -1}, defaultCfg(), []float64{0}); err == nil {
		t.Error("warm length mismatch should fail")
	}
}

func TestMaxIterCap(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, y := twoBlobs(rng, 100, 0.2, 1.0) // heavily overlapping → many iters
	cfg := defaultCfg()
	cfg.MaxIter = 3
	res, err := Solve(x, y, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters > 3 {
		t.Errorf("iters=%d exceeded cap", res.Iters)
	}
	if res.Converged {
		t.Error("should not report convergence when capped")
	}
}

func TestIterationsGrowWithSamples(t *testing.T) {
	// The Table III phenomenon: iterations scale roughly linearly with m.
	// Per-seed counts are noisy, so compare the small and large endpoints
	// with a generous factor.
	iters := func(mpc int) int {
		rng := rand.New(rand.NewSource(7))
		x, y := twoBlobs(rng, mpc, 0.8, 1.0)
		res, err := Solve(x, y, defaultCfg(), nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Iters
	}
	small, large := iters(25), iters(400)
	if large < 4*small {
		t.Errorf("iterations should scale with m: m=50→%d iters, m=800→%d iters", small, large)
	}
}

func TestTakeFlops(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x, y := twoBlobs(rng, 20, 2, 0.5)
	s, err := New(x, y, defaultCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5 && !s.Step(); i++ {
	}
	f1 := s.TakeFlops()
	if f1 <= 0 {
		t.Fatal("flops should accumulate")
	}
	if f2 := s.TakeFlops(); f2 != 0 {
		t.Fatalf("drained twice: %v", f2)
	}
	// More steps accumulate again.
	s.Step()
	if s.TakeFlops() <= 0 {
		t.Error("flops after more steps")
	}
}

func TestSparseDenseSameSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	de, y := twoBlobs(rng, 30, 2, 0.5)
	// Sparse copy.
	m, n := de.Rows(), de.Features()
	rp := make([]int32, m+1)
	var ix []int32
	var vx []float64
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			ix = append(ix, int32(j))
			vx = append(vx, de.At(i, j))
		}
		rp[i+1] = int32(len(ix))
	}
	sp := la.NewSparse(m, n, rp, ix, vx)
	rd, err := Solve(de, y, defaultCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Solve(sp, y, defaultCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Dense and sparse dot products accumulate in different orders, so
	// iteration paths may differ slightly; the learned decision function
	// must still agree on every training point.
	if diff := rd.Iters - rs.Iters; diff > rd.Iters/4+3 || -diff > rd.Iters/4+3 {
		t.Errorf("iteration counts far apart: %d vs %d", rd.Iters, rs.Iters)
	}
	for i := 0; i < m; i++ {
		dd := decision(de, y, rd.Alpha, rd.B, defaultCfg().Kernel, de, i)
		ds := decision(sp, y, rs.Alpha, rs.B, defaultCfg().Kernel, sp, i)
		if math.Abs(dd-ds) > 0.05 || (dd > 0) != (ds > 0) {
			t.Fatalf("decision[%d] %v vs %v", i, dd, ds)
		}
	}
}

func TestApplyExternalUpdateMatchesLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x, y := twoBlobs(rng, 15, 2, 0.5)
	cfg := defaultCfg()
	a, _ := New(x, y, cfg, nil)
	b, _ := New(x, y, cfg, nil)

	// One local step on a.
	bh, ih, bl, il := a.LocalExtremes()
	_ = bh
	_ = bl
	u := a.PairDeltas(ih, il)
	a.UpdateF(ih, il, u)

	// Same step on b via the external-update path.
	b.AddAlpha(ih, u.DAlphaHigh)
	b.AddAlpha(il, u.DAlphaLow)
	buf := make([]float64, x.Rows())
	b.ApplyExternalUpdate(x, ih, y[ih], u.DAlphaHigh, buf)
	b.ApplyExternalUpdate(x, il, y[il], u.DAlphaLow, buf)

	for i := range a.F() {
		if math.Abs(a.F()[i]-b.F()[i]) > 1e-9 {
			t.Fatalf("f[%d] %v vs %v", i, a.F()[i], b.F()[i])
		}
	}
	for i := range a.Alpha() {
		if math.Abs(a.Alpha()[i]-b.Alpha()[i]) > 1e-12 {
			t.Fatalf("alpha[%d] %v vs %v", i, a.Alpha()[i], b.Alpha()[i])
		}
	}
}
