package smo

import "casvm/internal/trace"

// Shrinking (LIBSVM-style active-set reduction). Samples whose multiplier
// sits at a box bound and whose optimality value f_i says they cannot
// re-enter the working set are temporarily dropped from the scans and
// f-updates, cutting the per-iteration cost from O(m) to O(|active|).
// Before convergence is declared, f is reconstructed exactly for the
// shrunk samples and the whole set is reactivated; optimisation resumes if
// any shrunk sample turns out to violate KKT, so shrinking never changes
// the solution — only the work needed to reach it.

// shrinkEvery is the number of successful iterations between shrink
// sweeps, mirroring LIBSVM's min(m, 1000) cadence.
func (s *Solver) shrinkEvery() int {
	m := len(s.y)
	if m < 1000 {
		return m
	}
	return 1000
}

// initActive fills the active list with every index.
func (s *Solver) initActive() {
	s.invalidateExtremes()
	s.active = s.active[:0]
	for i := range s.y {
		s.active = append(s.active, i)
	}
	s.shrunk = false
}

// shrinkable reports whether sample i is safely inactive: its multiplier
// is at a bound and f_i lies strictly on the non-violating side of the
// current thresholds.
func (s *Solver) shrinkable(i int, bHigh, bLow float64) bool {
	a := s.alpha[i]
	switch {
	case a == 0:
		if s.y[i] > 0 { // only in I_high: harmless if f_i above bLow
			return s.f[i] > bLow
		}
		return s.f[i] < bHigh // only in I_low
	case a == s.boundFor(i):
		if s.y[i] > 0 { // only in I_low
			return s.f[i] < bHigh
		}
		return s.f[i] > bLow // only in I_high
	default:
		return false // interior multipliers stay active
	}
}

// shrink drops currently shrinkable samples from the active set.
func (s *Solver) shrink() {
	sp := s.rec.Begin(trace.CatSolver, "shrink")
	defer s.rec.End(sp)
	bHigh, iHigh, bLow, iLow := s.LocalExtremes()
	if iHigh < 0 || iLow < 0 {
		return
	}
	kept := s.active[:0]
	for _, i := range s.active {
		if s.shrinkable(i, bHigh, bLow) {
			s.shrunk = true
		} else {
			kept = append(kept, i)
		}
	}
	if len(kept) != len(s.active) {
		// The cached extremes were computed over the pre-shrink set.
		s.invalidateExtremes()
		s.shrinkCount++
	}
	s.active = kept
	if len(s.active) < 2 {
		// Degenerate: bring everyone back rather than stall.
		s.reconstructAndActivate()
	}
}

// reconstructAndActivate recomputes f exactly for every inactive sample
// from the support vectors (f_i = Σ_j α_j y_j K_ij − y_i) and reactivates
// the full index set.
func (s *Solver) reconstructAndActivate() {
	if !s.shrunk {
		return
	}
	sp := s.rec.Begin(trace.CatSolver, "reconstruct")
	defer s.rec.End(sp)
	s.invalidateExtremes()
	m := len(s.y)
	inactive := make([]bool, m)
	for i := range inactive {
		inactive[i] = true
	}
	for _, i := range s.active {
		inactive[i] = false
	}
	// Rebuild from scratch for the inactive rows only.
	row := make([]float64, m)
	rebuilt := make([]float64, m)
	for i := range rebuilt {
		rebuilt[i] = -s.y[i]
	}
	for j := 0; j < m; j++ {
		if s.alpha[j] == 0 {
			continue
		}
		s.flops += s.cfg.Kernel.CrossRow(s.x, s.x, j, row)
		coef := s.alpha[j] * s.y[j]
		for i := 0; i < m; i++ {
			if inactive[i] {
				rebuilt[i] += coef * row[i]
			}
		}
		s.flops += float64(2 * m)
	}
	for i := 0; i < m; i++ {
		if inactive[i] {
			s.f[i] = rebuilt[i]
		}
	}
	s.initActive()
}

// stepShrinking is Step with active-set maintenance; used when
// cfg.Shrinking is set.
func (s *Solver) stepShrinking() (done bool) {
	if len(s.active) == 0 {
		s.initActive()
	}
	if s.sinceShrink >= s.shrinkEvery() {
		s.shrink()
		s.sinceShrink = 0
	}
	bHigh, iHigh, bLow, iLow := s.LocalExtremes()
	if iHigh < 0 || iLow < 0 || bLow-bHigh < 2*s.cfg.tol() {
		// Converged on the active set: verify against the full set.
		if s.shrunk {
			s.reconstructAndActivate()
			bHigh, iHigh, bLow, iLow = s.LocalExtremes()
			if iHigh < 0 || iLow < 0 || bLow-bHigh < 2*s.cfg.tol() {
				return true
			}
			// A shrunk sample violates KKT: keep optimising.
		} else {
			return true
		}
	}
	if s.cfg.SecondOrder {
		if j := s.secondOrderLow(iHigh, bHigh); j >= 0 {
			iLow = j
		}
	}
	if !s.cfg.disableTilePrefetch {
		s.cache.PrefetchPair(iHigh, iLow)
	}
	u := s.PairDeltas(iHigh, iLow)
	if u.DAlphaHigh == 0 && u.DAlphaLow == 0 {
		return true
	}
	s.fusedUpdateScan(iHigh, iLow, u)
	s.iters++
	s.sinceShrink++
	return false
}

// ActiveCount reports the live active-set size (m when shrinking is off or
// nothing has been shrunk).
func (s *Solver) ActiveCount() int {
	if !s.cfg.Shrinking || len(s.active) == 0 {
		return len(s.y)
	}
	return len(s.active)
}
