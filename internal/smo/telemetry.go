package smo

import (
	"sync"
	"time"
)

// Per-iteration solver telemetry: when Config.Telemetry is set, Solve
// records one IterSample into a fixed-capacity ring after every applied
// SMO step. The ring is the bridge to the live telemetry server
// (internal/telemetry streams it over SSE); a nil ring keeps the solve
// loop on its usual path with a single-branch check and zero allocations.

// IterSample is one iteration's convergence snapshot.
type IterSample struct {
	Rank int `json:"rank"`
	Iter int `json:"iter"`
	// DualObj is the dual objective W(α) = ½·Σ_{α_i>0} α_i(1 − y_i f_i),
	// exact from the identity f_i = Σ_j α_j y_j K_ij − y_i. While samples
	// are shrunk their f entries are stale, so the value is approximate
	// between reconstructions (exact again at every reconstruct sweep and
	// at convergence).
	DualObj float64 `json:"dual_obj"`
	// KKTGap is bLow − bHigh from the last working-set scan (0 when the
	// cached extremes were invalidated without a rescan).
	KKTGap float64 `json:"kkt_gap"`
	// Active is the live active-set size; SVs counts nonzero multipliers;
	// Shrinks counts shrink sweeps that removed samples so far.
	Active  int   `json:"active"`
	SVs     int   `json:"svs"`
	Shrinks int   `json:"shrinks"`
	UnixNs  int64 `json:"unix_ns"`
}

// TelemetryRing is a fixed-capacity, concurrency-safe ring of iteration
// samples. Writers (the solver goroutines) overwrite the oldest entries;
// readers page through with Since cursors, so a slow reader loses old
// samples instead of stalling training. All methods are nil-safe.
type TelemetryRing struct {
	mu    sync.Mutex
	buf   []IterSample
	total uint64 // samples ever recorded; buf holds the trailing len(buf)
}

// NewTelemetryRing creates a ring holding the last n samples (n ≤ 0 means
// 1024).
func NewTelemetryRing(n int) *TelemetryRing {
	if n <= 0 {
		n = 1024
	}
	return &TelemetryRing{buf: make([]IterSample, 0, n)}
}

// Record appends a sample, overwriting the oldest once full. Nil-safe.
func (t *TelemetryRing) Record(s IterSample) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, s)
	} else {
		t.buf[int(t.total)%cap(t.buf)] = s
	}
	t.total++
	t.mu.Unlock()
}

// Total returns how many samples have ever been recorded (0 for nil).
func (t *TelemetryRing) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Len returns how many samples are currently buffered.
func (t *TelemetryRing) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Since returns every buffered sample with sequence number ≥ cursor, in
// record order, plus the next cursor (pass it back in to page). Samples
// older than the ring's capacity are gone; the returned slice is a copy.
func (t *TelemetryRing) Since(cursor uint64) ([]IterSample, uint64) {
	if t == nil {
		return nil, cursor
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	oldest := t.total - uint64(len(t.buf))
	if cursor < oldest {
		cursor = oldest
	}
	if cursor >= t.total {
		return nil, t.total
	}
	n := int(t.total - cursor)
	out := make([]IterSample, 0, n)
	for seq := cursor; seq < t.total; seq++ {
		out = append(out, t.buf[int(seq)%cap(t.buf)])
	}
	return out, t.total
}

// Latest returns the most recent sample, if any.
func (t *TelemetryRing) Latest() (IterSample, bool) {
	if t == nil {
		return IterSample{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.total == 0 {
		return IterSample{}, false
	}
	return t.buf[int(t.total-1)%cap(t.buf)], true
}

// sampleTelemetry records one IterSample after an applied step; called
// from Solve only when a ring is attached.
func (s *Solver) sampleTelemetry() {
	var dual float64
	svs := 0
	for i, a := range s.alpha {
		if a > 0 {
			dual += a * (1 - s.y[i]*s.f[i])
			svs++
		}
	}
	var gap float64
	if s.extValid && s.ext.iHigh >= 0 && s.ext.iLow >= 0 {
		gap = s.ext.bLow - s.ext.bHigh
	}
	s.cfg.Telemetry.Record(IterSample{
		Rank:    s.cfg.TelemetryRank,
		Iter:    s.iters,
		DualObj: dual / 2,
		KKTGap:  gap,
		Active:  s.ActiveCount(),
		SVs:     svs,
		Shrinks: s.shrinkCount,
		UnixNs:  time.Now().UnixNano(),
	})
}
