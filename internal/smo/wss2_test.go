package smo

import (
	"math"
	"math/rand"
	"testing"

	"casvm/internal/kernel"
)

func TestSecondOrderConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x, y := twoBlobs(rng, 80, 1.2, 0.9)
	cfg := defaultCfg()
	cfg.SecondOrder = true
	res, err := Solve(x, y, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("WSS2 should converge")
	}
	// Same KKT feasibility as first-order.
	var sumAY float64
	for i, a := range res.Alpha {
		if a < 0 || a > cfg.C {
			t.Fatalf("alpha[%d]=%v outside box", i, a)
		}
		sumAY += a * y[i]
	}
	if math.Abs(sumAY) > 1e-9*(1+float64(len(y))) {
		t.Fatalf("Σαy=%v", sumAY)
	}
}

func TestSecondOrderUsuallyFewerIterations(t *testing.T) {
	// WSS2's guaranteed-decrease selection should need no more iterations
	// than the maximal violating pair on average; allow per-seed slack.
	rng := rand.New(rand.NewSource(22))
	totalFirst, totalSecond := 0, 0
	for trial := 0; trial < 5; trial++ {
		x, y := twoBlobs(rng, 60+trial*20, 1.0, 1.0)
		c1 := defaultCfg()
		r1, err := Solve(x, y, c1, nil)
		if err != nil {
			t.Fatal(err)
		}
		c2 := defaultCfg()
		c2.SecondOrder = true
		r2, err := Solve(x, y, c2, nil)
		if err != nil {
			t.Fatal(err)
		}
		totalFirst += r1.Iters
		totalSecond += r2.Iters
	}
	if totalSecond > totalFirst*5/4 {
		t.Errorf("WSS2 iterations %d vs WSS1 %d — expected ≤ 1.25×", totalSecond, totalFirst)
	}
}

func TestSecondOrderSameDecisions(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x, y := twoBlobs(rng, 50, 2, 0.5)
	c1 := defaultCfg()
	r1, err := Solve(x, y, c1, nil)
	if err != nil {
		t.Fatal(err)
	}
	c2 := defaultCfg()
	c2.SecondOrder = true
	r2, err := Solve(x, y, c2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < x.Rows(); i++ {
		d1 := decision(x, y, r1.Alpha, r1.B, c1.Kernel, x, i)
		d2 := decision(x, y, r2.Alpha, r2.B, c2.Kernel, x, i)
		if (d1 > 0) != (d2 > 0) {
			t.Fatalf("selection rules disagree on training point %d (%v vs %v)", i, d1, d2)
		}
	}
}

func TestSecondOrderLinearKernel(t *testing.T) {
	// Diag() is non-trivial for linear kernels; make sure WSS2 works there.
	rng := rand.New(rand.NewSource(24))
	x, y := twoBlobs(rng, 40, 3, 0.3)
	cfg := Config{C: 1, Kernel: kernel.Params{Kind: kernel.Linear}, SecondOrder: true}
	res, err := Solve(x, y, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < x.Rows(); i++ {
		if (decision(x, y, res.Alpha, res.B, cfg.Kernel, x, i) > 0) == (y[i] > 0) {
			correct++
		}
	}
	if acc := float64(correct) / float64(x.Rows()); acc < 0.95 {
		t.Errorf("linear WSS2 accuracy %.3f", acc)
	}
}
