package smo

import (
	"math/rand"
	"testing"

	"casvm/internal/kernel"
	"casvm/internal/la"
)

// TestTiledPrefetchMatchesUnprefetched proves the pair prefetch (both
// working-set kernel rows filled through one shared-streaming tile before
// PairDeltas) leaves the whole training trajectory untouched: multipliers,
// bias, iteration counts and flop totals are bit-identical with the
// prefetch disabled, across selection modes, storage formats and thread
// counts — the same way TestFusedMatchesUnfused pins the fused pass.
func TestTiledPrefetchMatchesUnprefetched(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	de, y := twoBlobs(rng, 150, 2, 0.9)
	sp := sparseCopy(de)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"first-order", Config{C: 1, Tol: 1e-3, Kernel: kernel.RBF(0.5)}},
		{"wss2", Config{C: 1, Tol: 1e-3, Kernel: kernel.RBF(0.5), SecondOrder: true}},
		{"shrinking", Config{C: 1, Tol: 1e-3, Kernel: kernel.RBF(0.5), Shrinking: true}},
		{"small-cache", Config{C: 1, Tol: 1e-3, Kernel: kernel.RBF(0.5), CacheRows: 4}},
		{"linear", Config{C: 1, Tol: 1e-3, Kernel: kernel.Params{Kind: kernel.Linear}, MaxIter: 500}},
	}
	for _, tc := range cases {
		for _, mat := range []struct {
			name string
			x    *la.Matrix
		}{{"dense", de}, {"sparse", sp}} {
			for _, threads := range []int{1, 4} {
				on := tc.cfg
				on.Threads = threads
				off := on
				off.disableTilePrefetch = true
				want, err := Solve(mat.x, y, off, nil)
				if err != nil {
					t.Fatal(err)
				}
				got, err := Solve(mat.x, y, on, nil)
				if err != nil {
					t.Fatal(err)
				}
				requireIdentical(t, tc.name+"/"+mat.name, got, want)
			}
		}
	}
}

// TestApplyExternalPairMatchesSequential pins the fused distributed pair
// update against the two sequential ApplyExternalUpdate calls it replaces:
// identical f vectors and identical flop charges, for both storage kinds
// and both kernel families.
func TestApplyExternalPairMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	de, y := twoBlobs(rng, 80, 2, 0.8)
	sp := sparseCopy(de)
	for _, mat := range []struct {
		name string
		x    *la.Matrix
	}{{"dense", de}, {"sparse", sp}} {
		for _, p := range []kernel.Params{kernel.RBF(0.4), {Kind: kernel.Linear}} {
			cfg := Config{C: 1, Tol: 1e-3, Kernel: p}
			ext := mat.x.Subset([]int{3, 117})
			mk := func() *Solver {
				s, err := New(mat.x, y, cfg, nil)
				if err != nil {
					t.Fatal(err)
				}
				return s
			}
			sSeq := mk()
			sPair := mk()
			m := mat.x.Rows()
			buf := make([]float64, m)
			sSeq.ApplyExternalUpdate(ext, 0, 1, 0.25, buf)
			sSeq.ApplyExternalUpdate(ext, 1, -1, 0.5, buf)
			bufH := make([]float64, m)
			bufL := make([]float64, m)
			sPair.ApplyExternalPair(ext, 0, 1, 0.25, ext, 1, -1, 0.5, bufH, bufL)
			if fs, fp := sSeq.TakeFlops(), sPair.TakeFlops(); fs != fp {
				t.Fatalf("%s/%v: flops %v vs %v", mat.name, p.Kind, fs, fp)
			}
			for i := range sSeq.f {
				if sSeq.f[i] != sPair.f[i] {
					t.Fatalf("%s/%v: f[%d] %v vs %v", mat.name, p.Kind, i, sSeq.f[i], sPair.f[i])
				}
			}
		}
	}
}
