package smo

import (
	"runtime"
	"testing"

	"casvm/internal/kernel"
	"casvm/internal/trace"
)

// TestDisabledInstrumentationZeroAllocs pins the nil-sink contract: with no
// timeline or registry attached (the default Config), the solver's
// per-iteration hot path — the fused update+scan pass, the split
// update/scan passes, and kernel-row fills behind them — must not allocate
// at all. A single allocation here would tax every un-traced run on every
// iteration.
func TestDisabledInstrumentationZeroAllocs(t *testing.T) {
	x, y := benchBlobs(512)
	cfg := Config{C: 1, Tol: 1e-3, Kernel: kernel.RBF(0.5)}
	s, err := New(x, y, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.cache.Row(0)
	s.cache.Row(1)
	u := PairUpdate{}

	if allocs := testing.AllocsPerRun(200, func() {
		s.fusedUpdateScan(0, 1, u)
	}); allocs != 0 {
		t.Fatalf("fused pass allocated %.1f/op with instrumentation disabled, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		s.UpdateF(0, 1, u)
		s.LocalExtremes()
	}); allocs != 0 {
		t.Fatalf("update+scan allocated %.1f/op with instrumentation disabled, want 0", allocs)
	}
	// Force row-cache misses too: a capacity-2 cache makes every rotated
	// Row call take the fill path with its trace hook.
	small := kernel.NewRowCache(cfg.Kernel, x, 2)
	if allocs := testing.AllocsPerRun(50, func() {
		for i := 0; i < 8; i++ {
			small.Row(i)
		}
	}); allocs != 0 {
		t.Fatalf("row fills allocated %.1f/op with instrumentation disabled, want 0", allocs)
	}
}

// TestInstrumentedSolveMatchesDisabled: attaching a timeline and metrics
// must observe the run, not perturb it — the trajectory stays bit-identical.
func TestInstrumentedSolveMatchesDisabled(t *testing.T) {
	x, y := benchBlobs(1024)
	cfg := Config{C: 1, Tol: 1e-3, Kernel: kernel.RBF(0.5), MaxIter: 200, SecondOrder: true}
	want, err := Solve(x, y, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	tl := trace.NewTimeline(1)
	cfg.Trace = tl.Rank(0)
	cfg.Metrics = trace.NewRegistry()
	got, err := Solve(x, y, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "instrumented-vs-disabled", got, want)
	if len(tl.Events()) == 0 {
		t.Fatal("instrumented run recorded no events")
	}
	if cfg.Metrics.Counter("smo_iterations_total", "").Value() == 0 {
		t.Fatal("instrumented run recorded no metrics")
	}
}

// BenchmarkSolveInstrumented is BenchmarkSolve with a live timeline and
// metrics registry attached — compare against BenchmarkSolve to price the
// enabled-instrumentation overhead (the disabled path is priced by
// TestDisabledInstrumentationZeroAllocs: exactly zero).
func BenchmarkSolveInstrumented(b *testing.B) {
	x, y := benchBlobs(4096)
	cfg := Config{C: 1, Tol: 1e-3, Kernel: kernel.RBF(0.5), MaxIter: 60, SecondOrder: true,
		Threads: runtime.GOMAXPROCS(0)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl := trace.NewTimeline(1)
		cfg.Trace = tl.Rank(0)
		cfg.Metrics = trace.NewRegistry()
		if _, err := Solve(x, y, cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}
