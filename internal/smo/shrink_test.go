package smo

import (
	"math"
	"math/rand"
	"testing"
)

func TestShrinkingSameSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 4; trial++ {
		x, y := twoBlobs(rng, 100+40*trial, 1.0+0.3*float64(trial), 1.0)
		plain := defaultCfg()
		rp, err := Solve(x, y, plain, nil)
		if err != nil {
			t.Fatal(err)
		}
		shr := defaultCfg()
		shr.Shrinking = true
		rs, err := Solve(x, y, shr, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !rs.Converged {
			t.Fatalf("trial %d: shrinking run did not converge", trial)
		}
		// Same decision function on every training point.
		for i := 0; i < x.Rows(); i++ {
			dp := decision(x, y, rp.Alpha, rp.B, plain.Kernel, x, i)
			ds := decision(x, y, rs.Alpha, rs.B, shr.Kernel, x, i)
			if (dp > 0) != (ds > 0) && math.Abs(dp) > 0.01 {
				t.Fatalf("trial %d: decisions differ at %d: %v vs %v", trial, i, dp, ds)
			}
		}
		// Same KKT feasibility.
		var sumAY float64
		for i, a := range rs.Alpha {
			if a < 0 || a > shr.C {
				t.Fatalf("alpha[%d]=%v outside box", i, a)
			}
			sumAY += a * y[i]
		}
		if math.Abs(sumAY) > 1e-9*(1+float64(len(y))) {
			t.Fatalf("Σαy=%v", sumAY)
		}
	}
}

// Shrinking must satisfy the KKT duality gap measured against a fully
// recomputed f — catching stale-f bugs in the reconstruction.
func TestShrinkingKKTAgainstRecomputedF(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	x, y := twoBlobs(rng, 150, 1.2, 1.0)
	cfg := defaultCfg()
	cfg.Shrinking = true
	res, err := Solve(x, y, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := x.Rows()
	f := make([]float64, m)
	for i := 0; i < m; i++ {
		var s float64
		for j := 0; j < m; j++ {
			if res.Alpha[j] != 0 {
				s += res.Alpha[j] * y[j] * cfg.Kernel.Eval(x, i, x, j)
			}
		}
		f[i] = s - y[i]
	}
	bHigh, bLow := math.Inf(1), math.Inf(-1)
	for i := 0; i < m; i++ {
		inHigh := (y[i] > 0 && res.Alpha[i] < cfg.C-1e-9) || (y[i] < 0 && res.Alpha[i] > 1e-9)
		inLow := (y[i] > 0 && res.Alpha[i] > 1e-9) || (y[i] < 0 && res.Alpha[i] < cfg.C-1e-9)
		if inHigh && f[i] < bHigh {
			bHigh = f[i]
		}
		if inLow && f[i] > bLow {
			bLow = f[i]
		}
	}
	if gap := bLow - bHigh; gap > 2*cfg.Tol+1e-6 {
		t.Fatalf("duality gap %v exceeds 2·tol after shrinking", gap)
	}
}

func TestShrinkingActuallyShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	// Well-separated blobs: most points end at α=0 and should shrink away.
	x, y := twoBlobs(rng, 300, 3, 0.5)
	cfg := defaultCfg()
	cfg.Shrinking = true
	s, err := New(x, y, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	shrunkSeen := false
	for i := 0; i < 100000; i++ {
		if s.Step() {
			break
		}
		if s.ActiveCount() < s.M() {
			shrunkSeen = true
		}
	}
	if !shrunkSeen && s.Iters() > 2*s.shrinkEvery() {
		t.Error("long run on separable data never shrank anything")
	}
}

func TestShrinkingWithSecondOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	x, y := twoBlobs(rng, 120, 1.5, 0.8)
	cfg := defaultCfg()
	cfg.Shrinking = true
	cfg.SecondOrder = true
	res, err := Solve(x, y, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("combined options did not converge")
	}
	correct := 0
	for i := 0; i < x.Rows(); i++ {
		if (decision(x, y, res.Alpha, res.B, cfg.Kernel, x, i) > 0) == (y[i] > 0) {
			correct++
		}
	}
	if acc := float64(correct) / float64(x.Rows()); acc < 0.95 {
		t.Errorf("accuracy %.3f", acc)
	}
}

func TestActiveCountDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	x, y := twoBlobs(rng, 20, 2, 0.5)
	s, err := New(x, y, defaultCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.ActiveCount() != 40 {
		t.Fatalf("ActiveCount=%d want 40", s.ActiveCount())
	}
}
