package smo

// The fused SMO hot path. Every iteration of the seed solver made three
// to four O(m) passes over f and the two cached kernel rows: UpdateF's two
// axpy sweeps, the next iteration's LocalExtremes scan, and (under WSS2)
// the second-order gain scan. This file merges the two axpy sweeps and the
// *next* iteration's extremes scan into a single pass — each element of f
// is loaded once, updated with both kernel-row contributions, and
// immediately tested for the (bHigh, iHigh, bLow, iLow) working-set
// extremes — halving memory traffic over the solver's dominant arrays.
// The scans parallelize across the persistent worker pool (internal/pool)
// with deterministic chunking.
//
// Two invariants are load-bearing:
//
//   - Bit-identity. The per-element update is computed as two dependent
//     additions (f + ch·rh, then + cl·rl), exactly the arithmetic of the
//     seed's two separate axpy passes; extremes reduce across chunks in
//     chunk order with strict comparisons, which reproduces the serial
//     scan's lowest-index tie-breaking. Results are therefore identical
//     for any thread count, including 1.
//
//   - Flop accounting. The fused pass charges only the update's 4·m; the
//     scan's 2·m is charged when the cached extremes are consumed by
//     LocalExtremes. Total flops per solve — and hence virtual time —
//     are exactly the seed's, fused or not, parallel or not.

import (
	"math"

	"casvm/internal/trace"
)

// scanGrain is the minimum number of f-elements per chunk worth handing
// to a pool worker for the light O(m) passes (≈6 flops per element).
const scanGrain = 2048

// extremes is one chunk's partial working-set scan result.
type extremes struct {
	bHigh, bLow float64
	iHigh, iLow int
}

func newExtremes() extremes {
	return extremes{bHigh: math.Inf(1), iHigh: -1, bLow: math.Inf(-1), iLow: -1}
}

// gain is one chunk's partial WSS2 second-order scan result.
type gain struct {
	best float64
	j    int
}

// bounds returns the positive- and negative-class box bounds once, so the
// hot loops avoid per-element posWeight() calls.
func (s *Solver) bounds() (cPos, cNeg float64) {
	return s.cfg.C * s.cfg.posWeight(), s.cfg.C
}

// invalidateExtremes drops the cached working-set extremes; every mutation
// of alpha, f, or the active set must call it.
func (s *Solver) invalidateExtremes() { s.extValid = false }

// setExtremes records a freshly computed scan result as the cached
// extremes.
func (s *Solver) setExtremes(e extremes) {
	s.ext = e
	s.extValid = true
}

// reduceExtremes folds per-chunk partials in chunk order. Strict
// comparisons keep the earliest chunk's candidate on ties, matching the
// serial scan's lowest-index tie-breaking bit for bit.
func (s *Solver) reduceExtremes(nc int) extremes {
	r := s.chunkExt[0]
	for c := 1; c < nc; c++ {
		e := s.chunkExt[c]
		if e.bHigh < r.bHigh {
			r.bHigh, r.iHigh = e.bHigh, e.iHigh
		}
		if e.bLow > r.bLow {
			r.bLow, r.iLow = e.bLow, e.iLow
		}
	}
	return r
}

// scanExtremesRange computes the working-set extremes over f[lo:hi].
func (s *Solver) scanExtremesRange(lo, hi int) extremes {
	e := newExtremes()
	cPos, cNeg := s.bounds()
	f, y, alpha := s.f, s.y, s.alpha
	for i := lo; i < hi; i++ {
		v := f[i]
		if y[i] > 0 {
			if alpha[i] < cPos && v < e.bHigh {
				e.bHigh, e.iHigh = v, i
			}
			if alpha[i] > 0 && v > e.bLow {
				e.bLow, e.iLow = v, i
			}
		} else {
			if alpha[i] > 0 && v < e.bHigh {
				e.bHigh, e.iHigh = v, i
			}
			if alpha[i] < cNeg && v > e.bLow {
				e.bLow, e.iLow = v, i
			}
		}
	}
	return e
}

// scanExtremesActive is scanExtremesRange over a slice of active indices.
func (s *Solver) scanExtremesActive(act []int) extremes {
	e := newExtremes()
	cPos, cNeg := s.bounds()
	f, y, alpha := s.f, s.y, s.alpha
	for _, i := range act {
		v := f[i]
		if y[i] > 0 {
			if alpha[i] < cPos && v < e.bHigh {
				e.bHigh, e.iHigh = v, i
			}
			if alpha[i] > 0 && v > e.bLow {
				e.bLow, e.iLow = v, i
			}
		} else {
			if alpha[i] > 0 && v < e.bHigh {
				e.bHigh, e.iHigh = v, i
			}
			if alpha[i] < cNeg && v > e.bLow {
				e.bLow, e.iLow = v, i
			}
		}
	}
	return e
}

// scanExtremes runs the full (or active-set) extremes scan, fanning out
// across the pool when the range is large enough to pay for it. It does
// not charge flops; LocalExtremes owns the 2·m charge.
func (s *Solver) scanExtremes() extremes {
	if s.cfg.Shrinking && len(s.active) > 0 {
		act := s.active
		if s.pl != nil && len(act) >= 2*scanGrain {
			nc := s.pl.ParallelForChunks(s.cfg.Threads, len(act), scanGrain, func(c, lo, hi int) {
				s.chunkExt[c] = s.scanExtremesActive(act[lo:hi])
			})
			return s.reduceExtremes(nc)
		}
		return s.scanExtremesActive(act)
	}
	n := len(s.f)
	if s.pl != nil && n >= 2*scanGrain {
		nc := s.pl.ParallelForChunks(s.cfg.Threads, n, scanGrain, func(c, lo, hi int) {
			s.chunkExt[c] = s.scanExtremesRange(lo, hi)
		})
		return s.reduceExtremes(nc)
	}
	return s.scanExtremesRange(0, n)
}

// fusedRange applies both kernel-row updates to f[lo:hi] and scans the
// updated values for extremes in the same pass. The update arithmetic is
// two dependent additions per element — exactly the seed's two axpy
// sweeps — so values are bit-identical to the unfused path.
func (s *Solver) fusedRange(lo, hi int, rh, rl []float64, ch, cl float64) extremes {
	e := newExtremes()
	cPos, cNeg := s.bounds()
	f, y, alpha := s.f, s.y, s.alpha
	for i := lo; i < hi; i++ {
		v := f[i] + ch*rh[i]
		v += cl * rl[i]
		f[i] = v
		if y[i] > 0 {
			if alpha[i] < cPos && v < e.bHigh {
				e.bHigh, e.iHigh = v, i
			}
			if alpha[i] > 0 && v > e.bLow {
				e.bLow, e.iLow = v, i
			}
		} else {
			if alpha[i] > 0 && v < e.bHigh {
				e.bHigh, e.iHigh = v, i
			}
			if alpha[i] < cNeg && v > e.bLow {
				e.bLow, e.iLow = v, i
			}
		}
	}
	return e
}

// fusedActive is fusedRange restricted to a slice of active indices.
func (s *Solver) fusedActive(act []int, rh, rl []float64, ch, cl float64) extremes {
	e := newExtremes()
	cPos, cNeg := s.bounds()
	f, y, alpha := s.f, s.y, s.alpha
	for _, i := range act {
		v := f[i] + ch*rh[i]
		v += cl * rl[i]
		f[i] = v
		if y[i] > 0 {
			if alpha[i] < cPos && v < e.bHigh {
				e.bHigh, e.iHigh = v, i
			}
			if alpha[i] > 0 && v > e.bLow {
				e.bLow, e.iLow = v, i
			}
		} else {
			if alpha[i] > 0 && v < e.bHigh {
				e.bHigh, e.iHigh = v, i
			}
			if alpha[i] < cNeg && v > e.bLow {
				e.bLow, e.iLow = v, i
			}
		}
	}
	return e
}

// fusedUpdateScan is the fused hot-path iteration tail: it applies eqn
// (5)'s f-update for the optimised pair and computes the next iteration's
// working-set extremes in the same pass over f. It charges only the
// update's 4·m flops; the cached extremes carry the scan, which
// LocalExtremes charges on consumption. Must be called after PairDeltas
// (alpha already holds the pair's new values).
func (s *Solver) fusedUpdateScan(iHigh, iLow int, u PairUpdate) {
	sp := s.rec.Begin(trace.CatSolver, "update")
	defer s.rec.End(sp)
	ch := u.DAlphaHigh * s.y[iHigh]
	cl := u.DAlphaLow * s.y[iLow]
	rh := s.cache.Row(iHigh)
	rl := s.cache.Row(iLow)
	if s.cfg.Shrinking && len(s.active) > 0 && s.shrunk {
		act := s.active
		if s.pl != nil && len(act) >= 2*scanGrain {
			nc := s.pl.ParallelForChunks(s.cfg.Threads, len(act), scanGrain, func(c, lo, hi int) {
				s.chunkExt[c] = s.fusedActive(act[lo:hi], rh, rl, ch, cl)
			})
			s.setExtremes(s.reduceExtremes(nc))
		} else {
			s.setExtremes(s.fusedActive(act, rh, rl, ch, cl))
		}
		s.flops += float64(4 * len(act))
		return
	}
	n := len(s.f)
	if s.pl != nil && n >= 2*scanGrain {
		nc := s.pl.ParallelForChunks(s.cfg.Threads, n, scanGrain, func(c, lo, hi int) {
			s.chunkExt[c] = s.fusedRange(lo, hi, rh, rl, ch, cl)
		})
		s.setExtremes(s.reduceExtremes(nc))
	} else {
		s.setExtremes(s.fusedRange(0, n, rh, rl, ch, cl))
	}
	s.flops += float64(4 * n)
}

// gainRange computes the best WSS2 second-order gain over f[lo:hi]:
// among violating I_low members, maximise (bHigh − f_j)²/η_j.
func (s *Solver) gainRange(lo, hi int, rowH []float64, khh, bHigh float64) gain {
	g := gain{best: -1, j: -1}
	cNeg := s.cfg.C
	f, y, alpha := s.f, s.y, s.alpha
	for j := lo; j < hi; j++ {
		if y[j] > 0 {
			if alpha[j] <= 0 {
				continue
			}
		} else if alpha[j] >= cNeg {
			continue
		}
		v := f[j]
		if v <= bHigh {
			continue
		}
		eta := khh + s.cache.Diag(j) - 2*rowH[j]
		if eta <= 1e-12 {
			eta = 1e-12
		}
		d := bHigh - v
		if gn := d * d / eta; gn > g.best {
			g.best, g.j = gn, j
		}
	}
	return g
}

// gainActive is gainRange over a slice of active indices.
func (s *Solver) gainActive(act []int, rowH []float64, khh, bHigh float64) gain {
	g := gain{best: -1, j: -1}
	cNeg := s.cfg.C
	f, y, alpha := s.f, s.y, s.alpha
	for _, j := range act {
		if y[j] > 0 {
			if alpha[j] <= 0 {
				continue
			}
		} else if alpha[j] >= cNeg {
			continue
		}
		v := f[j]
		if v <= bHigh {
			continue
		}
		eta := khh + s.cache.Diag(j) - 2*rowH[j]
		if eta <= 1e-12 {
			eta = 1e-12
		}
		d := bHigh - v
		if gn := d * d / eta; gn > g.best {
			g.best, g.j = gn, j
		}
	}
	return g
}

// reduceGain folds per-chunk WSS2 partials in chunk order (strict >,
// earliest chunk wins ties — the serial lowest-index rule).
func (s *Solver) reduceGain(nc int) int {
	r := s.chunkGain[0]
	for c := 1; c < nc; c++ {
		if g := s.chunkGain[c]; g.best > r.best {
			r = g
		}
	}
	return r.j
}
