package casvm

import "testing"

// goldenRun pins the full-pipeline fingerprint of one training
// configuration: the SHA-256 of the serialized model set, the critical-path
// iteration count, and the modeled total flop count. All three are
// bit-deterministic — independent of wall-clock, scheduling and the Threads
// setting — so any drift means the numerics changed, not the environment.
type goldenRun struct {
	method Method
	p      int
	hash   string
	iters  int
	flops  float64
}

func goldenParams(m Method, p, threads int) Params {
	pr := DefaultParams(m, p)
	pr.Kernel = RBF(0.5)
	pr.Threads = threads
	return pr
}

// TestGoldenEndToEnd trains on the registered toy dataset and compares the
// run fingerprint against golden values, at Threads = 1, 2 and 4. The
// shared-memory parallel solver promises bit-identical results for every
// thread count; a mismatch between thread counts is a determinism bug, a
// mismatch against the golden values is a numerics change (update the
// constants only for an intentional algorithm change).
func TestGoldenEndToEnd(t *testing.T) {
	golden := []goldenRun{
		{MethodRACA, 4, "6e603d88184ed7fd7a01845da0195d90edf557a950f1535f8b630d4b35b3eb2f", 739, 2.78144e+07},
		{MethodFCFSCA, 4, "39d1239622cd4d386a42d70151d76b3d26bada66e4929426e56ca3f6ccc58fb4", 604, 2.671318e+07},
		{MethodDisSMO, 2, "976ca4d880ff9b6a581dab35f7854977444a47ff3aadf35905d1ff74e39a9188", 2148, 2.47452801e+08},
	}
	ds, _, err := LoadDataset("toy", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range golden {
		for _, threads := range []int{1, 2, 4} {
			pr := goldenParams(g.method, g.p, threads)
			out, err := Train(ds.X, ds.Y, pr)
			if err != nil {
				t.Fatalf("%s threads=%d: %v", g.method, threads, err)
			}
			rep, err := BuildReport(out, pr, "toy", 0)
			if err != nil {
				t.Fatal(err)
			}
			if rep.ModelHash != g.hash {
				t.Errorf("%s threads=%d: model hash %s, want %s",
					g.method, threads, rep.ModelHash, g.hash)
			}
			if rep.Iters != g.iters {
				t.Errorf("%s threads=%d: iters %d, want %d",
					g.method, threads, rep.Iters, g.iters)
			}
			if rep.TotalFlops != g.flops {
				t.Errorf("%s threads=%d: flops %v, want %v",
					g.method, threads, rep.TotalFlops, g.flops)
			}
		}
	}
}
