package casvm

import (
	"bytes"
	"math"
	"testing"

	"casvm/internal/trace"
	"casvm/internal/trace/critpath"
)

// goldenRun pins the full-pipeline fingerprint of one training
// configuration: the SHA-256 of the serialized model set, the critical-path
// iteration count, and the modeled total flop count. All three are
// bit-deterministic — independent of wall-clock, scheduling and the Threads
// setting — so any drift means the numerics changed, not the environment.
type goldenRun struct {
	method Method
	p      int
	hash   string
	iters  int
	flops  float64
}

func goldenParams(m Method, p, threads int) Params {
	pr := DefaultParams(m, p)
	pr.Kernel = RBF(0.5)
	pr.Threads = threads
	return pr
}

// TestGoldenEndToEnd trains on the registered toy dataset and compares the
// run fingerprint against golden values, at Threads = 1, 2 and 4. The
// shared-memory parallel solver promises bit-identical results for every
// thread count; a mismatch between thread counts is a determinism bug, a
// mismatch against the golden values is a numerics change (update the
// constants only for an intentional algorithm change).
//
// At Threads=1 a Timeline rides along (instrumentation is clock-invariant,
// so the fingerprints must not move) and the causal trace is held to the
// acceptance invariants: the critical-path decomposition sums to the total
// virtual makespan within 1e-9, and re-analyzing the exported trace file
// reproduces the in-process split exactly — encoding/json round-trips
// float64 bit-for-bit, so file-based casvm-profile analysis and the run
// report must agree to the last bit.
func TestGoldenEndToEnd(t *testing.T) {
	golden := []goldenRun{
		{MethodRACA, 4, "6e603d88184ed7fd7a01845da0195d90edf557a950f1535f8b630d4b35b3eb2f", 739, 2.78144e+07},
		{MethodFCFSCA, 4, "39d1239622cd4d386a42d70151d76b3d26bada66e4929426e56ca3f6ccc58fb4", 604, 2.671318e+07},
		{MethodDisSMO, 2, "976ca4d880ff9b6a581dab35f7854977444a47ff3aadf35905d1ff74e39a9188", 2148, 2.47452801e+08},
	}
	ds, _, err := LoadDataset("toy", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range golden {
		for _, threads := range []int{1, 2, 4} {
			pr := goldenParams(g.method, g.p, threads)
			if threads == 1 {
				pr.Timeline = NewTimeline(g.p)
			}
			out, err := Train(ds.X, ds.Y, pr)
			if err != nil {
				t.Fatalf("%s threads=%d: %v", g.method, threads, err)
			}
			rep, err := BuildReport(out, pr, "toy", 0)
			if err != nil {
				t.Fatal(err)
			}
			if rep.ModelHash != g.hash {
				t.Errorf("%s threads=%d: model hash %s, want %s",
					g.method, threads, rep.ModelHash, g.hash)
			}
			if rep.Iters != g.iters {
				t.Errorf("%s threads=%d: iters %d, want %d",
					g.method, threads, rep.Iters, g.iters)
			}
			if rep.TotalFlops != g.flops {
				t.Errorf("%s threads=%d: flops %v, want %v",
					g.method, threads, rep.TotalFlops, g.flops)
			}
			if threads == 1 {
				checkCritPath(t, string(g.method), pr, out.Stats.TotalSec, rep.CritPath)
			}
		}
	}
}

// checkCritPath holds the traced run to the critical-path acceptance
// invariants (see TestGoldenEndToEnd).
func checkCritPath(t *testing.T, method string, pr Params, totalSec float64, cp *trace.CritPathReport) {
	t.Helper()
	if cp == nil {
		t.Fatalf("%s: report has no crit_path despite an attached timeline", method)
	}
	if d := pr.Timeline.Dropped(); d != 0 {
		t.Fatalf("%s: %d dropped trace records; the tiling is incomplete", method, d)
	}
	sum := cp.CompSec + cp.LatencySec + cp.BandwidthSec + cp.WaitSec
	if math.Abs(sum-cp.MakespanSec) > 1e-9 {
		t.Errorf("%s: decomposition sum %v != makespan %v (Δ=%g)",
			method, sum, cp.MakespanSec, sum-cp.MakespanSec)
	}
	if math.Abs(cp.MakespanSec-totalSec) > 1e-9 {
		t.Errorf("%s: critical-path makespan %v != Stats.TotalSec %v",
			method, cp.MakespanSec, totalSec)
	}
	if v := pr.Timeline.CausalityViolations(); v != 0 {
		t.Errorf("%s: %d causality violations in a fault-free run", method, v)
	}

	// The trace file is as authoritative as the live timeline: export,
	// re-read, re-analyze, and demand the identical split.
	var buf bytes.Buffer
	if err := pr.Timeline.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("%s: %v", method, err)
	}
	extra, err := trace.ReadTraceExtra(&buf)
	if err != nil {
		t.Fatalf("%s: %v", method, err)
	}
	a, err := critpath.Analyze(critpath.FromExtra(extra))
	if err != nil {
		t.Fatalf("%s: %v", method, err)
	}
	fromFile := a.Report()
	if fromFile.MakespanSec != cp.MakespanSec ||
		fromFile.CompSec != cp.CompSec ||
		fromFile.LatencySec != cp.LatencySec ||
		fromFile.BandwidthSec != cp.BandwidthSec ||
		fromFile.WaitSec != cp.WaitSec ||
		fromFile.EndRank != cp.EndRank ||
		fromFile.Hops != cp.Hops ||
		fromFile.Steps != cp.Steps {
		t.Errorf("%s: file analysis diverged from in-process analysis:\nfile: %+v\nlive: %+v",
			method, fromFile, cp)
	}
}
