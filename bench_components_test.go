package casvm

// Component micro-benchmarks: the SMO solver, the kernel primitives, the
// message-passing collectives and the partitioners. These quantify the
// building blocks the per-table benchmarks compose.

import (
	"math/rand"
	"testing"

	"casvm/internal/data"
	"casvm/internal/kernel"
	"casvm/internal/kmeans"
	"casvm/internal/la"
	"casvm/internal/mpi"
	"casvm/internal/partition"
	"casvm/internal/perfmodel"
	"casvm/internal/smo"
)

func benchDataset(b *testing.B, m int) *data.Dataset {
	b.Helper()
	d, err := data.Generate(data.MixtureSpec{
		Name: "bench", Train: m, Test: 0, Features: 32, Clusters: 4,
		Separation: 7, Noise: 1, PosFrac: []float64{0.5}, LabelNoise: 0.02,
		Margin: 0.8, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func BenchmarkSMOSolve1k(b *testing.B) {
	d := benchDataset(b, 1000)
	cfg := smo.Config{C: 1, Kernel: kernel.RBF(1.0 / 64)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := smo.Solve(d.X, d.Y, cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSMOIteration(b *testing.B) {
	d := benchDataset(b, 2000)
	cfg := smo.Config{C: 1, Kernel: kernel.RBF(1.0 / 64)}
	s, err := smo.New(d.X, d.Y, cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Step() {
			b.StopTimer()
			s, _ = smo.New(d.X, d.Y, cfg, nil) // converged: restart
			b.StartTimer()
		}
	}
}

func BenchmarkKernelRowDense(b *testing.B) {
	d := benchDataset(b, 2000)
	p := kernel.RBF(1.0 / 64)
	dst := make([]float64, d.M())
	b.ReportAllocs()
	b.SetBytes(int64(8 * d.M() * d.Features()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Row(d.X, i%d.M(), dst)
	}
}

func BenchmarkKernelRowCache(b *testing.B) {
	d := benchDataset(b, 2000)
	c := kernel.NewRowCache(kernel.RBF(1.0/64), d.X, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Row(i % 128) // working set smaller than capacity: mostly hits
	}
}

func BenchmarkAllreduce8Ranks(b *testing.B) {
	w := mpi.NewWorld(8, perfmodel.Hopper(), 1)
	payload := make([]float64, 256)
	b.ReportAllocs()
	b.ResetTimer()
	err := w.Run(func(c *mpi.Comm) error {
		for i := 0; i < b.N; i++ {
			c.AllreduceSum(payload)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkBcast64Ranks(b *testing.B) {
	w := mpi.NewWorld(64, perfmodel.Hopper(), 1)
	payload := make([]byte, 4096)
	b.ResetTimer()
	err := w.Run(func(c *mpi.Comm) error {
		for i := 0; i < b.N; i++ {
			var in []byte
			if c.Rank() == 0 {
				in = payload
			}
			c.Bcast(0, in)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkKMeans(b *testing.B) {
	d := benchDataset(b, 2000)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kmeans.Run(d.X, kmeans.Seed(d.X, 8, rng), 0, 0)
	}
}

func BenchmarkPartitionFCFS(b *testing.B) {
	d := benchDataset(b, 2000)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.FCFS(d.X, d.Y, 8, partition.Options{RatioBalanced: true}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionBKM(b *testing.B) {
	d := benchDataset(b, 2000)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.BalancedKMeans(d.X, d.Y, 8, partition.Options{}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictRouted(b *testing.B) {
	ds, entry, err := LoadDataset("toy", 0.5)
	if err != nil {
		b.Fatal(err)
	}
	p := DefaultParams(MethodRACA, 8)
	p.Kernel = RBF(entry.GammaOrDefault())
	out, _, err := TrainDataset(ds, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Set.Predict(ds.TestX, i%ds.TestX.Rows())
	}
}

func BenchmarkWireEncodeDecode(b *testing.B) {
	d := benchDataset(b, 1000)
	rows := make([]int, d.M())
	for i := range rows {
		rows[i] = i
	}
	b.SetBytes(int64(d.X.EncodedSize(rows)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := d.X.EncodeRows(rows)
		if _, err := la.DecodeMatrix(buf); err != nil {
			b.Fatal(err)
		}
	}
}
