module casvm

go 1.22
