GO ?= go

.PHONY: build test race vet check fuzz bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the full verification gate: vet plus the whole test suite under
# the race detector (the concurrency-heavy packages — mpi, tcpmpi, faults,
# core — are exactly where races would hide).
check: vet race

# bench runs the SMO hot-path benchmark suite at 1 and 4 threads and
# records ns/op + allocs/op in BENCH_smo.json (via cmd/benchjson).
bench:
	$(GO) test ./internal/smo ./internal/kernel ./internal/la \
		-run '^$$' -bench 'BenchmarkSolve$$|UpdateScanFused|RowCache|BenchmarkDot' \
		-benchmem -cpu 1,4 | $(GO) run ./cmd/benchjson > BENCH_smo.json
	@echo wrote BENCH_smo.json

# Short fuzz sweep over every fuzz target (parsers and the wire-frame
# decoder); the seed corpora also run in plain `make test`.
fuzz:
	$(GO) test -fuzz FuzzReadLIBSVM -fuzztime 10s ./internal/data
	$(GO) test -fuzz FuzzReadFrame -fuzztime 10s ./internal/tcpmpi
