GO ?= go

.PHONY: build test race race-matrix vet check fuzz fuzz-smoke bench bench-kernel bench-e2e bench-serve bench-diff serve-smoke soak soak-cluster cover

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# race-matrix re-runs the concurrency-heavy packages under the race
# detector at 1 and 4 CPUs — single-CPU scheduling serializes goroutines
# differently and has caught interleavings the default run missed.
race-matrix:
	$(GO) test -race -cpu 1,4 ./internal/mpi ./internal/tcpmpi \
		./internal/faults ./internal/core ./internal/pool ./internal/trace \
		./internal/cluster ./internal/kernel ./internal/la ./internal/serve \
		./internal/telemetry ./internal/telemetry/fleet

# fuzz-smoke runs every fuzz target's seed corpus (no exploration) so the
# corpora cannot rot; `make fuzz` does the time-boxed exploration.
fuzz-smoke:
	$(GO) test -run 'Fuzz' ./internal/data ./internal/tcpmpi ./internal/trace \
		./internal/serve ./internal/cluster

# serve-smoke boots the live telemetry server against a real training run
# held mid-flight (TestServeSmoke) and against a cluster coordinator with
# per-job namespaces (TestServeClusterNamespaces), scraping /metrics,
# /report, /events, /jobs and /debug/pprof — plus the whole inference-plane
# suite (HTTP smoke, batched-vs-sequential equivalence, hot-reload torn-model
# hammering) under the race detector.
serve-smoke:
	$(GO) test -race -count=1 -run 'TestServe' ./internal/telemetry
	$(GO) test -race -count=1 ./internal/serve

# check is the full verification gate: vet, the whole suite under the race
# detector (which includes the TestChaosMatrix fault smoke: six methods ×
# crash/drop+delay/corrupt under respawn recovery), the 1/4-CPU race matrix
# over the concurrency-heavy packages, the fuzz seed corpora, and the
# live-server smoke run.
check: vet race race-matrix fuzz-smoke serve-smoke

# soak is the randomized chaos soak: seeded random fault schedules over
# every method family and both recovery policies, each run checked for
# deadlock-freedom, bounded retries and convergence. Any failure log prints
# the schedule seed, which alone reproduces the run.
soak:
	CASVM_SOAK=1 $(GO) test -count=1 -run TestChaosSoak -v ./internal/core

# soak-cluster churns a live coordinator for ~20s: six concurrent jobs over
# six workers while a chaos goroutine revokes and re-registers leases every
# 150ms. Every job must terminate (no hangs), at least half must complete,
# and completed jobs must still converge to accurate models. The remote
# soak then repeats the exercise with real executor processes — Remote jobs
# train on forked workers while the churn loop kill -9s and replaces them,
# and every completed job must land on its fault-free ModelHash. The fleet
# soak then forks the real 4-process examples/distributed launcher with an
# injected straggler and asserts the merged fleet trace is produced, parses
# strictly, and analyzes end-to-end.
soak-cluster:
	CASVM_SOAK_CLUSTER=1 $(GO) test -count=1 -timeout 300s -run 'TestClusterSoak|TestRemoteSoak' -v ./internal/cluster
	CASVM_SOAK_CLUSTER=1 $(GO) test -count=1 -timeout 300s -run TestFleetSoak -v ./internal/telemetry/fleet

# bench runs the SMO hot-path benchmark suite at 1 and 4 threads and
# records ns/op + allocs/op in BENCH_smo.json (via cmd/benchjson).
# BenchmarkSolveInstrumented vs BenchmarkSolve prices the live-timeline
# overhead; the disabled path is pinned to 0 allocs/op by test.
bench: bench-kernel
	$(GO) test ./internal/smo ./internal/kernel ./internal/la \
		-run '^$$' -bench 'BenchmarkSolve$$|BenchmarkSolveInstrumented$$|BenchmarkSolveCheckpointed$$|UpdateScanFused|RowCache|BenchmarkDot' \
		-benchmem -cpu 1,4 | $(GO) run ./cmd/benchjson > BENCH_smo.json
	@echo wrote BENCH_smo.json

# bench-kernel records the tile-engine suite in BENCH_kernel.json: blocked
# MulTile vs the row loop, CrossTile vs per-element Eval, batched
# PredictAll vs the per-row loop it replaced (the mixed-storage cases are
# the headline: the row path re-densifies the sparse side per support
# vector), and the two LIBSVM readers.
KERNEL_BENCH = BenchmarkMulTile|BenchmarkCrossTile|BenchmarkPredictAll|BenchmarkLoadLIBSVM
KERNEL_BENCH_PKGS = ./internal/la ./internal/kernel ./internal/model ./internal/data
bench-kernel:
	$(GO) test $(KERNEL_BENCH_PKGS) -run '^$$' -bench '$(KERNEL_BENCH)' \
		-benchmem | $(GO) run ./cmd/benchjson > BENCH_kernel.json
	@echo wrote BENCH_kernel.json

# bench-e2e records the end-to-end training benchmarks (the root-package
# ablation suite) in BENCH_e2e.json — the committed baseline bench-diff
# gates against. Three iterations each: the modeled work is deterministic,
# and averaging a few wall timings keeps scheduler noise inside the diff
# threshold.
bench-e2e:
	$(GO) test . -run '^$$' -bench BenchmarkAblation -benchmem -benchtime 3x \
		| $(GO) run ./cmd/benchjson > BENCH_e2e.json
	@echo wrote BENCH_e2e.json

# bench-serve records the sustained-load serving benchmark in
# BENCH_serve.json: the face-like compressed model served over real HTTP
# with binary query payloads at client concurrency 2·GOMAXPROCS. One op is
# one 256-query request, so ns/op is per-request wall time; the extra
# metrics carry the headline preds/s and exact p50/p99 request latency.
bench-serve:
	$(GO) test ./internal/serve -run '^$$' -bench BenchmarkServeSustained \
		-benchtime 1500x | $(GO) run ./cmd/benchjson > BENCH_serve.json
	@echo wrote BENCH_serve.json

# bench-diff re-runs the e2e and tile-engine suites and exits nonzero when
# any benchmark's ns/op regressed past the threshold ratio against the
# committed baselines (0.5 = 50%, generous because single-iteration wall
# timings are noisy — algorithmic regressions are far larger).
BENCH_DIFF_THRESHOLD ?= 0.5
bench-diff:
	$(GO) test . -run '^$$' -bench BenchmarkAblation -benchmem -benchtime 3x \
		| $(GO) run ./cmd/benchjson > BENCH_e2e.new.json
	$(GO) run ./cmd/benchjson -diff -threshold $(BENCH_DIFF_THRESHOLD) \
		BENCH_e2e.json BENCH_e2e.new.json
	@rm -f BENCH_e2e.new.json
	$(GO) test $(KERNEL_BENCH_PKGS) -run '^$$' -bench '$(KERNEL_BENCH)' \
		-benchmem | $(GO) run ./cmd/benchjson > BENCH_kernel.new.json
	$(GO) run ./cmd/benchjson -diff -threshold $(BENCH_DIFF_THRESHOLD) \
		BENCH_kernel.json BENCH_kernel.new.json
	@rm -f BENCH_kernel.new.json
	$(GO) test ./internal/serve -run '^$$' -bench BenchmarkServeSustained \
		-benchtime 1500x | $(GO) run ./cmd/benchjson > BENCH_serve.new.json
	$(GO) run ./cmd/benchjson -diff -threshold $(BENCH_DIFF_THRESHOLD) \
		BENCH_serve.json BENCH_serve.new.json
	@rm -f BENCH_serve.new.json

# Short fuzz sweep over every fuzz target (parsers, the wire-frame
# decoder, and the run-report round trip); seed corpora also run in
# plain `make test`.
fuzz:
	$(GO) test -fuzz FuzzReadLIBSVM -fuzztime 10s ./internal/data
	$(GO) test -fuzz FuzzReadFrame -fuzztime 10s ./internal/tcpmpi
	$(GO) test -fuzz FuzzRunReportRoundTrip -fuzztime 10s ./internal/trace
	$(GO) test -run 'Fuzz' -fuzz FuzzDecodePredictRequest -fuzztime 10s ./internal/serve
	$(GO) test -run 'Fuzz' -fuzz FuzzExecFrames -fuzztime 10s ./internal/cluster

# cover enforces statement-coverage floors on the packages whose
# regressions are silent: 70% on the observability/modeling set, 75% on the
# fleet telemetry plane (its merge/repair arithmetic fails quietly — a
# wrong offset still produces a plausible-looking trace) and the cluster
# runtime (its recovery and remote-executor paths only run when workers
# die, so untested code is exactly the code that fires in production
# incidents), 80% on the inference plane (it fronts production traffic, so
# its error paths must be exercised, not just its happy path).
COVER_PKGS = ./internal/trace ./internal/trace/critpath ./internal/perfmodel ./internal/expt \
	./internal/kernel ./internal/la ./internal/compress
COVER_PKGS_75 = ./internal/telemetry/fleet ./internal/cluster
COVER_PKGS_80 = ./internal/serve
cover:
	@for pkg in $(COVER_PKGS); do \
		out=$$($(GO) test -cover $$pkg | tail -1); \
		echo "$$out"; \
		pct=$$(echo "$$out" | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "FAIL: no coverage for $$pkg"; exit 1; fi; \
		if ! awk -v p="$$pct" 'BEGIN{exit (p>=70)?0:1}'; then \
			echo "FAIL: $$pkg coverage $$pct% < 70%"; exit 1; fi; \
	done
	@for pkg in $(COVER_PKGS_75); do \
		out=$$($(GO) test -cover $$pkg | tail -1); \
		echo "$$out"; \
		pct=$$(echo "$$out" | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "FAIL: no coverage for $$pkg"; exit 1; fi; \
		if ! awk -v p="$$pct" 'BEGIN{exit (p>=75)?0:1}'; then \
			echo "FAIL: $$pkg coverage $$pct% < 75%"; exit 1; fi; \
	done
	@for pkg in $(COVER_PKGS_80); do \
		out=$$($(GO) test -cover $$pkg | tail -1); \
		echo "$$out"; \
		pct=$$(echo "$$out" | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "FAIL: no coverage for $$pkg"; exit 1; fi; \
		if ! awk -v p="$$pct" 'BEGIN{exit (p>=80)?0:1}'; then \
			echo "FAIL: $$pkg coverage $$pct% < 80%"; exit 1; fi; \
	done
	@echo "coverage floors (70%/75%/80%) passed"
