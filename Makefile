GO ?= go

.PHONY: build test race race-matrix vet check fuzz fuzz-smoke bench cover

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# race-matrix re-runs the concurrency-heavy packages under the race
# detector at 1 and 4 CPUs — single-CPU scheduling serializes goroutines
# differently and has caught interleavings the default run missed.
race-matrix:
	$(GO) test -race -cpu 1,4 ./internal/mpi ./internal/tcpmpi \
		./internal/faults ./internal/core ./internal/pool ./internal/trace

# fuzz-smoke runs every fuzz target's seed corpus (no exploration) so the
# corpora cannot rot; `make fuzz` does the time-boxed exploration.
fuzz-smoke:
	$(GO) test -run 'Fuzz' ./internal/data ./internal/tcpmpi ./internal/trace

# check is the full verification gate: vet, the whole suite under the race
# detector, the 1/4-CPU race matrix over the concurrency-heavy packages,
# and the fuzz seed corpora.
check: vet race race-matrix fuzz-smoke

# bench runs the SMO hot-path benchmark suite at 1 and 4 threads and
# records ns/op + allocs/op in BENCH_smo.json (via cmd/benchjson).
# BenchmarkSolveInstrumented vs BenchmarkSolve prices the live-timeline
# overhead; the disabled path is pinned to 0 allocs/op by test.
bench:
	$(GO) test ./internal/smo ./internal/kernel ./internal/la \
		-run '^$$' -bench 'BenchmarkSolve$$|BenchmarkSolveInstrumented$$|UpdateScanFused|RowCache|BenchmarkDot' \
		-benchmem -cpu 1,4 | $(GO) run ./cmd/benchjson > BENCH_smo.json
	@echo wrote BENCH_smo.json

# Short fuzz sweep over every fuzz target (parsers, the wire-frame
# decoder, and the run-report round trip); seed corpora also run in
# plain `make test`.
fuzz:
	$(GO) test -fuzz FuzzReadLIBSVM -fuzztime 10s ./internal/data
	$(GO) test -fuzz FuzzReadFrame -fuzztime 10s ./internal/tcpmpi
	$(GO) test -fuzz FuzzRunReportRoundTrip -fuzztime 10s ./internal/trace

# cover enforces a 70% statement-coverage floor on the observability and
# modeling packages (the ones whose regressions are silent).
COVER_PKGS = ./internal/trace ./internal/perfmodel ./internal/expt
cover:
	@for pkg in $(COVER_PKGS); do \
		out=$$($(GO) test -cover $$pkg | tail -1); \
		echo "$$out"; \
		pct=$$(echo "$$out" | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "FAIL: no coverage for $$pkg"; exit 1; fi; \
		if ! awk -v p="$$pct" 'BEGIN{exit (p>=70)?0:1}'; then \
			echo "FAIL: $$pkg coverage $$pct% < 70%"; exit 1; fi; \
	done
	@echo "coverage floor (70%) passed"
