GO ?= go

.PHONY: build test race vet check fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the full verification gate: vet plus the whole test suite under
# the race detector (the concurrency-heavy packages — mpi, tcpmpi, faults,
# core — are exactly where races would hide).
check: vet race

# Short fuzz sweep over every fuzz target (parsers and the wire-frame
# decoder); the seed corpora also run in plain `make test`.
fuzz:
	$(GO) test -fuzz FuzzReadLIBSVM -fuzztime 10s ./internal/data
	$(GO) test -fuzz FuzzReadFrame -fuzztime 10s ./internal/tcpmpi
