// casvm-serve is the production inference server: it loads one or more
// saved model sets and answers POST /predict over HTTP/JSON, coalescing
// concurrent requests into blocked tile evaluations. The surface:
//
//	POST /predict               — {"queries": [[...]]} or binary queries_b64
//	GET  /healthz               — readiness (200 once a model is loaded)
//	GET  /models                — loaded models with provenance + metadata
//	POST /models/<name>/reload  — atomic hot-reload from disk
//	GET  /metrics               — Prometheus text exposition
//	GET  /events                — SSE stream of live QPS and tail latency
//
// Usage:
//
//	casvm-serve -addr :8480 -model default=small.model [-model extra=other.model]
//	casvm-serve -selfbench                # sustained-load benchmark, JSON to stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"casvm"
	"casvm/internal/serve"
)

// modelFlags collects repeated -model name=path pairs.
type modelFlags []string

func (m *modelFlags) String() string     { return strings.Join(*m, ",") }
func (m *modelFlags) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "casvm-serve:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("casvm-serve", flag.ContinueOnError)
	var models modelFlags
	var (
		addr      = fs.String("addr", "localhost:8480", "listen address")
		maxBatch  = fs.Int("max-batch", 256, "flush a coalesced batch at this many queries")
		maxDelay  = fs.Duration("max-delay", 2*time.Millisecond, "flush a coalesced batch after this delay")
		selfbench = fs.Bool("selfbench", false, "train + compress the face-like dataset, serve it in-process, and run the sustained-load benchmark")
		benchDur  = fs.Duration("selfbench-duration", 5*time.Second, "selfbench load duration")
	)
	fs.Var(&models, "model", "model to serve, as name=path (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	batch := serve.BatcherConfig{MaxBatch: *maxBatch, MaxDelay: *maxDelay}
	if *selfbench {
		return runSelfbench(stdout, batch, *benchDur)
	}
	if len(models) == 0 {
		return fmt.Errorf("at least one -model name=path is required (or -selfbench)")
	}

	s, err := serve.Start(*addr, serve.Config{Batch: batch})
	if err != nil {
		return err
	}
	defer s.Close()
	for _, spec := range models {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("bad -model %q, want name=path", spec)
		}
		snap, err := s.AddModel(name, path)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "serving %s from %s (%d partitions, %d SVs, sha256 %.12s)\n",
			name, path, snap.Set.P(), snap.Set.NSV(), snap.FileSHA256)
	}
	fmt.Fprintf(stdout, "listening on %s\n", s.URL())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(stdout, "shutting down")
	return nil
}

// runSelfbench reproduces the `make bench-serve` measurement without a test
// binary: train the face-like dataset, compress it with the golden budget,
// serve it on a loopback port, and drive the shared load generator.
func runSelfbench(stdout io.Writer, batch serve.BatcherConfig, dur time.Duration) error {
	fmt.Fprintln(stdout, "selfbench: training face-like dataset...")
	ds, entry, err := casvm.LoadDataset("face", 1.0)
	if err != nil {
		return err
	}
	p := casvm.DefaultParams(casvm.MethodRACA, 8)
	p.Kernel = casvm.RBF(entry.GammaOrDefault())
	out, err := casvm.Train(ds.X, ds.Y, p)
	if err != nil {
		return err
	}
	small, st, err := casvm.CompressModelSet(out.Set, casvm.CompressOptions{
		Budget: 32, PruneFrac: 0.01, Seed: 7,
	})
	if err != nil {
		return err
	}
	fullAcc, compAcc := casvm.AnnotateCompression(small, out.Set, ds.TestX, ds.TestY)
	fmt.Fprintf(stdout, "selfbench: compressed %d → %d SVs, accuracy %.4f → %.4f\n",
		st.SVBefore, st.SVAfter, fullAcc, compAcc)

	s, err := serve.Start("localhost:0", serve.Config{Batch: batch})
	if err != nil {
		return err
	}
	defer s.Close()
	if _, err := s.AddModelSet("default", small); err != nil {
		return err
	}
	// Warm connections and the batcher outside the measured window.
	if _, err := serve.RunLoad(serve.LoadOptions{
		URL: s.URL(), Features: small.Centers.Features(), Requests: 64, Binary: true, Seed: 1,
	}); err != nil {
		return err
	}
	res, err := serve.RunLoad(serve.LoadOptions{
		URL:               s.URL(),
		Features:          small.Centers.Features(),
		QueriesPerRequest: 256,
		Binary:            true,
		Duration:          dur,
		Seed:              2,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "selfbench: %.0f preds/s sustained over %v (p50 %v, p99 %v, %d errors)\n",
		res.PredsPerSec, res.Elapsed.Round(time.Millisecond), res.P50.Round(time.Microsecond),
		res.P99.Round(time.Microsecond), res.Errors)
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
