package main

import (
	"path/filepath"
	"strings"
	"testing"

	"casvm"
)

// TestRunCompressRoundTrip drives the CLI over a real (tiny) trained model:
// compress with a budget, verify the output model loads, respects the
// budget, and carries the measured accuracy delta in its metadata.
func TestRunCompressRoundTrip(t *testing.T) {
	ds, err := casvm.GenerateDataset(casvm.MixtureSpec{
		Name: "compress-cli", Train: 300, Test: 100, Features: 5, Clusters: 4,
		Separation: 2.5, Noise: 0.7, PosFrac: []float64{0.5}, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := casvm.DefaultParams(casvm.MethodRACA, 4)
	p.Kernel = casvm.RBF(0.2)
	out, err := casvm.Train(ds.X, ds.Y, p)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "full.model")
	outP := filepath.Join(dir, "small.model")
	evalP := filepath.Join(dir, "eval.svm")
	if err := casvm.SaveModelSet(in, out.Set); err != nil {
		t.Fatal(err)
	}
	if err := casvm.WriteLIBSVMFile(evalP, &casvm.Dataset{X: ds.TestX, Y: ds.TestY}); err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	err = run([]string{"-in", in, "-out", outP, "-budget", "8", "-seed", "5", "-eval", evalP}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "compressed") || !strings.Contains(buf.String(), "accuracy:") {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}

	small, err := casvm.LoadModelSet(outP)
	if err != nil {
		t.Fatal(err)
	}
	for j, m := range small.Models {
		if m.NSV() > 8 {
			t.Fatalf("model %d has %d SVs, budget 8", j, m.NSV())
		}
	}
	for _, key := range []string{"compress_budget", "accuracy_delta"} {
		if small.Meta[key] == "" {
			t.Fatalf("output model missing %s metadata; have %v", key, small.Meta)
		}
	}

	// Flag validation errors, not exits.
	if err := run([]string{"-in", in}, &buf); err == nil {
		t.Fatal("missing -out should error")
	}
}
