// casvm-compress shrinks a saved model set for serving: per-partition
// K-means centroid budgeting plus small-α pruning, with the surviving
// support vectors re-weighted by a reduced-set least-squares fit. When an
// evaluation file is given, the measured accuracy delta is embedded in the
// output model's metadata so the serving layer can report the trade-off.
//
// Usage:
//
//	casvm-compress -in full.model -out small.model -budget 32 [-prune 0.01] [-eval test.svm]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"casvm"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "casvm-compress:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("casvm-compress", flag.ContinueOnError)
	var (
		in     = fs.String("in", "", "input model path")
		out    = fs.String("out", "", "output model path")
		budget = fs.Int("budget", 64, "max support vectors per partition model (0 = prune only)")
		prune  = fs.Float64("prune", 0.01, "drop SVs with α below this fraction of the model's max α")
		seed   = fs.Int64("seed", 1, "K-means seed (same budget+seed ⇒ same output model)")
		eval   = fs.String("eval", "", "LIBSVM-format file to measure the accuracy delta on")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("-in and -out are required")
	}
	full, err := casvm.LoadModelSet(*in)
	if err != nil {
		return err
	}
	small, st, err := casvm.CompressModelSet(full, casvm.CompressOptions{
		Budget: *budget, PruneFrac: *prune, Seed: *seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "compressed %d → %d SVs (ratio %.3f) across %d models\n",
		st.SVBefore, st.SVAfter, st.Ratio(), len(st.PerModel))
	if *eval != "" {
		ds, err := casvm.DatasetFromLIBSVM(*eval, full.Centers.Features())
		if err != nil {
			return err
		}
		fullAcc, compAcc := casvm.AnnotateCompression(small, full, ds.X, ds.Y)
		fmt.Fprintf(stdout, "accuracy: full %.4f → compressed %.4f (delta %+.4f)\n",
			fullAcc, compAcc, compAcc-fullAcc)
	}
	if err := casvm.SaveModelSet(*out, small); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", *out)
	return nil
}
