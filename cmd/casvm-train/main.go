// casvm-train trains an SVM model set with any of the eight methods, on a
// LIBSVM-format file or a named synthetic dataset, and writes a casvm model
// file.
//
// Usage:
//
//	casvm-train -data ijcnn -method ra-ca -p 8 -model out.model
//	casvm-train -file train.svm -method dissmo -p 4 -gamma 0.05 -model out.model
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"

	"casvm"
	"casvm/internal/cluster"
	"casvm/internal/faults"
	"casvm/internal/telemetry"
	"casvm/internal/trace"
)

func main() {
	var (
		file    = flag.String("file", "", "LIBSVM-format training file")
		dataset = flag.String("data", "", "named synthetic dataset (see -list)")
		scale   = flag.Float64("scale", 1.0, "synthetic dataset scale")
		method  = flag.String("method", "ra-ca", "training method")
		p       = flag.Int("p", 8, "number of ranks")
		c       = flag.Float64("c", 1.0, "regularization constant C")
		gamma   = flag.Float64("gamma", 0, "RBF gamma (0 = per-dataset heuristic)")
		tol     = flag.Float64("tol", 1e-3, "KKT tolerance")
		ratio   = flag.Bool("ratio-balance", true, "pos/neg ratio balancing (FCFS/BKM-CA)")
		threads = flag.Int("threads", 0, "per-rank solver threads (0/1 = serial; results are identical for any value)")
		modelP  = flag.String("model", "casvm.model", "output model path")
		report  = flag.String("report", "", "write a structured JSON run report to this path")
		traceP  = flag.String("trace", "", "write a Chrome trace_event JSON timeline to this path (load in chrome://tracing or ui.perfetto.dev)")
		serve   = flag.String("serve", "", "serve live telemetry on this address during training: /metrics, /events (SSE), /report, /debug/pprof (e.g. localhost:9100)")
		linger  = flag.Bool("serve-linger", false, "with -serve: keep the server up after training until interrupted")
		recPol  = flag.String("recover", "off", "recovery policy on rank failure: off, respawn (restart the lost rank from the last checkpoint), shrink (re-partition onto the survivors)")
		ckptEv  = flag.Int("ckpt-every", 0, "checkpoint cadence in solver iterations (0 = 64 when recovery is on)")
		chaos   = flag.Int64("chaos", 0, "inject a seeded random fault schedule (crashes, drops, delays); pair with -recover")
		replayF = flag.String("replay-faults", "", "replay the fault schedule recorded in this run report (a JSON file from -report)")
		clustr  = flag.String("cluster", "", "submit the run as a job to the casvm-cluster coordinator at this address instead of training locally (requires -data; jobs are supervised with shrink recovery unless -recover respawn)")
		remote  = flag.Bool("remote", false, "with -cluster: execute each rank's shard solve in its worker's own process instead of in-process on the coordinator (ra-ca only)")
		seed    = flag.Int64("seed", 1, "training seed (partitioning and solver tie-breaks)")
		list    = flag.Bool("list", false, "list datasets and methods, then exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("methods: ")
		for _, m := range casvm.Methods() {
			fmt.Println("  ", m)
		}
		fmt.Println("datasets:")
		for _, n := range casvm.DatasetNames() {
			fmt.Println("  ", n)
		}
		return
	}

	if *clustr != "" {
		// Thin-client mode: the coordinator resolves the dataset and
		// trains in its own elastic world, so only the spec crosses the
		// wire. -file paths are not shipped.
		if *dataset == "" {
			fail(fmt.Errorf("-cluster needs a named -data dataset (run -list for names)"))
		}
		policy := *recPol
		if policy == "off" {
			policy = "" // cluster jobs default to shrink supervision
		}
		spec := cluster.JobSpec{
			ID: "train", Dataset: *dataset, Scale: *scale, Method: *method,
			P: *p, C: *c, Gamma: *gamma, Tol: *tol, Seed: *seed,
			Policy: policy, CheckpointEvery: *ckptEv, Remote: *remote,
		}
		fmt.Printf("submitting %s job to %s (p=%d, dataset %s, remote=%v)\n", *method, *clustr, *p, *dataset, *remote)
		// A coordinator restarting mid-submit surfaces as a registration
		// or transport error; retry with capped backoff instead of
		// failing the CLI.
		res, err := cluster.SubmitWithRetry(*clustr, spec, 0, cluster.RetryConfig{
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "casvm-train: "+format+"\n", args...)
			},
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("job %s done: method=%s P=%d finalP=%d generations=%d\n", res.ID, res.Method, res.P, res.FinalP, res.Generations)
		fmt.Printf("iterations=%d SVs=%d accuracy=%.2f%%\n", res.Iters, res.SVs, 100*res.Accuracy)
		fmt.Printf("virtual time: %.4fs  wall: %.3fs\n", res.TotalSec, res.WallSec)
		if res.Recoveries > 0 || res.Grows > 0 {
			fmt.Printf("elasticity: %d recover(ies), lost ranks %v, %d grow(s) adding %d rank(s)\n",
				res.Recoveries, res.LostRanks, res.Grows, res.JoinedRanks)
		}
		fmt.Printf("model hash: %s (model stays with the coordinator)\n", res.ModelHash)
		return
	}

	m, err := casvm.ParseMethod(*method)
	if err != nil {
		fail(err)
	}
	var ds *casvm.Dataset
	g := *gamma
	switch {
	case *file != "":
		if ds, err = casvm.DatasetFromLIBSVM(*file, 0); err != nil {
			fail(err)
		}
		if g == 0 {
			g = 1.0 / float64(ds.Features())
		}
	case *dataset != "":
		var entry casvm.DatasetEntry
		if ds, entry, err = casvm.LoadDataset(*dataset, *scale); err != nil {
			fail(err)
		}
		if g == 0 {
			g = entry.GammaOrDefault()
		}
	default:
		fail(fmt.Errorf("one of -file or -data is required"))
	}

	params := casvm.DefaultParams(m, *p)
	params.C = *c
	params.Tol = *tol
	params.Seed = *seed
	params.Kernel = casvm.RBF(g)
	params.RatioBalanced = *ratio
	params.Threads = *threads
	pol, err := casvm.ParseRecoveryPolicy(*recPol)
	if err != nil {
		fail(err)
	}
	params.Recovery = casvm.Recovery{Policy: pol, CheckpointEvery: *ckptEv}
	switch {
	case *replayF != "":
		fi, err := readFaultsBlock(*replayF)
		if err != nil {
			fail(err)
		}
		sched := faults.ScheduleFromFaults(fi)
		params.Faults = faults.NewSchedule(sched)
		// The report pins the policy that handled the original run; explicit
		// -recover still wins.
		if pol == casvm.RecoverOff && fi.Policy != "" {
			params.Recovery.Policy = casvm.RecoveryPolicy(fi.Policy)
		}
		if params.Recovery.CheckpointEvery == 0 {
			params.Recovery.CheckpointEvery = fi.CheckpointEvery
		}
		fmt.Printf("replaying fault schedule: seed=%d events=%d policy=%s\n",
			sched.Seed, len(sched.Events), params.Recovery.Policy)
	case *chaos != 0:
		sched := faults.RandomSchedule(*chaos, *p, 4, faults.ScheduleOptions{})
		sched.Policy = string(params.Recovery.Policy)
		params.Faults = faults.NewSchedule(sched)
		fmt.Printf("chaos schedule: seed=%d events=%d policy=%s\n",
			sched.Seed, len(sched.Events), params.Recovery.Policy)
	}
	if *report != "" || *traceP != "" || *serve != "" {
		// Observability costs nothing unless asked for; when asked, the
		// timeline feeds both the Chrome export and the report's phase
		// split, and the registry feeds the report's metrics block.
		params.Timeline = casvm.NewTimeline(*p)
		params.Metrics = casvm.NewMetricsRegistry()
	}
	var srv *telemetry.Server
	live := &liveReport{}
	if *serve != "" {
		params.Telemetry = casvm.NewTelemetryRing(0)
		live.set(map[string]any{"status": "running", "method": string(m), "p": *p})
		srv, err = telemetry.Start(*serve, telemetry.Config{
			Metrics: params.Metrics,
			Ring:    params.Telemetry,
			Report:  live.get,
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("telemetry: http://%s  (/metrics /events /report /debug/pprof)\n", srv.Addr())
	}

	out, acc, err := casvm.TrainDataset(ds, params)
	if err != nil {
		fail(err)
	}
	st := out.Stats
	fmt.Printf("method=%s m=%d n=%d P=%d\n", m, ds.M(), ds.Features(), *p)
	fmt.Printf("iterations=%d SVs=%d\n", st.Iters, st.SVs)
	fmt.Printf("virtual time: total=%.4fs (init %.4fs, train %.4fs)\n",
		st.TotalSec, st.InitSec, st.TrainSec)
	fmt.Printf("communication: %d bytes in %d operations\n", st.CommBytes, st.CommOps)
	fmt.Printf("wall time: %v\n", st.Wall)
	if st.Recoveries > 0 {
		fmt.Printf("recovery: %d restart(s), lost ranks %v, %.4fs of virtual time (policy %s)\n",
			st.Recoveries, st.LostRanks, st.RecoverySec, params.Recovery.Policy)
	}
	if ds.TestX != nil {
		fmt.Printf("held-out accuracy: %.2f%%\n", 100*acc)
	}
	if err := casvm.SaveModelSet(*modelP, out.Set); err != nil {
		fail(err)
	}
	fmt.Printf("model written to %s\n", *modelP)

	name := *dataset
	if name == "" {
		name = *file
	}
	if *report != "" || srv != nil {
		rep, err := casvm.BuildReport(out, params, name, acc)
		if err != nil {
			fail(err)
		}
		live.set(rep)
		if *report != "" {
			if err := writeFile(*report, rep.WriteJSON); err != nil {
				fail(err)
			}
			fmt.Printf("report written to %s\n", *report)
		}
	}
	if *traceP != "" {
		if err := writeFile(*traceP, params.Timeline.WriteChromeTrace); err != nil {
			fail(err)
		}
		fmt.Printf("trace written to %s (open in chrome://tracing or ui.perfetto.dev; causal flow arrows between rank lanes)\n", *traceP)
	}
	if srv != nil {
		if *linger {
			fmt.Printf("telemetry: final report live at http://%s/report — Ctrl-C to exit\n", srv.Addr())
			ch := make(chan os.Signal, 1)
			signal.Notify(ch, os.Interrupt)
			<-ch
		}
		if err := srv.Close(); err != nil {
			fail(err)
		}
	}
}

// liveReport is the mutable document behind the telemetry server's
// /report endpoint: a run-status stub while training, swapped for the full
// structured report once the run finishes.
type liveReport struct {
	mu sync.Mutex
	v  any
}

func (l *liveReport) get() any {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.v
}

func (l *liveReport) set(v any) {
	l.mu.Lock()
	l.v = v
	l.mu.Unlock()
}

// readFaultsBlock loads a run report and returns its faults block, which
// alone reconstructs the original fault schedule.
func readFaultsBlock(path string) (*trace.FaultsInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep, err := trace.ReadReport(f)
	if err != nil {
		return nil, err
	}
	if rep.Faults == nil {
		return nil, fmt.Errorf("%s records no fault schedule to replay", path)
	}
	return rep.Faults, nil
}

// writeFile creates path and streams the writer function into it.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "casvm-train:", err)
	os.Exit(1)
}
