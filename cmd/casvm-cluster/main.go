// casvm-cluster is the elastic cluster runtime. In coordinator mode it
// accepts worker and client registrations, gang-schedules submitted
// training jobs over the worker pool, and converts lease churn into
// recovery actions: a worker whose lease expires mid-job shrinks (or
// respawns into) the running world, and a worker joining mid-run grows it
// back at the next checkpoint epoch — landing on the fault-free model
// hash for Dis-SMO.
//
// Start a coordinator with live telemetry:
//
//	casvm-cluster -listen localhost:7600 -serve localhost:9100
//
// Join workers (each one extra gang capacity; Ctrl-C leaves cleanly):
//
//	casvm-cluster -join localhost:7600
//
// Submit jobs with the thin client:
//
//	casvm-train -cluster localhost:7600 -data ijcnn -method dissmo -p 8
//
// The telemetry server namespaces each job: /jobs lists them and
// /jobs/<id>/{metrics,report,events} serve one job's counters, outcome
// and live convergence stream; the top-level /metrics carries the
// cluster_* membership counters (joins, leaves, lease expiries,
// scale-ups).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"casvm/internal/cluster"
	"casvm/internal/telemetry"
	"casvm/internal/trace"
)

func main() {
	var (
		listen = flag.String("listen", "localhost:7600", "coordinator registration address (workers and clients dial this)")
		serve  = flag.String("serve", "", "serve live telemetry on this address: /metrics, /jobs, /jobs/<id>/{metrics,report,events}")
		ttl    = flag.Duration("lease-ttl", 0, "worker lease TTL; a silent worker is expired after this (0 = 6s default)")
		join   = flag.String("join", "", "worker mode: register with the coordinator at this address and serve as gang capacity until interrupted")
	)
	flag.Parse()

	if *join != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		log.Printf("casvm-cluster: joining %s as a worker (Ctrl-C to leave)", *join)
		if err := cluster.JoinWorker(ctx, *join); err != nil {
			log.Fatalf("casvm-cluster: %v", err)
		}
		log.Printf("casvm-cluster: lease ended, leaving cleanly")
		return
	}

	met := trace.NewRegistry()
	coord, err := cluster.New(*listen, cluster.Config{
		LeaseTTL: *ttl,
		Metrics:  met,
		Logf:     log.Printf,
	})
	if err != nil {
		log.Fatalf("casvm-cluster: %v", err)
	}
	log.Printf("casvm-cluster: coordinator listening on %s", coord.Addr())

	var srv *telemetry.Server
	if *serve != "" {
		srv, err = telemetry.Start(*serve, telemetry.Config{
			Metrics: met,
			Report:  func() any { return statusReport(coord) },
			Jobs:    func() []telemetry.JobNamespace { return jobNamespaces(coord) },
		})
		if err != nil {
			log.Fatalf("casvm-cluster: %v", err)
		}
		log.Printf("casvm-cluster: telemetry at http://%s (/metrics /report /jobs)", srv.Addr())
	}

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	log.Printf("casvm-cluster: shutting down")
	if srv != nil {
		_ = srv.Close()
	}
	if err := coord.Close(); err != nil {
		log.Fatalf("casvm-cluster: close: %v", err)
	}
}

// statusReport is the /report document: the membership table and every
// job's lifecycle position.
func statusReport(coord *cluster.Coordinator) any {
	type jobStatus struct {
		ID     string             `json:"id"`
		State  string             `json:"state"`
		Gang   []int              `json:"gang,omitempty"`
		Result *cluster.JobResult `json:"result,omitempty"`
	}
	type workerStatus struct {
		ID   int    `json:"id"`
		Addr string `json:"addr"`
	}
	var ws []workerStatus
	for _, w := range coord.Workers() {
		ws = append(ws, workerStatus{ID: w.ID, Addr: w.Addr})
	}
	var js []jobStatus
	for _, j := range coord.Jobs() {
		js = append(js, jobStatus{
			ID: j.ID(), State: j.State().String(), Gang: j.Gang(), Result: j.Result(),
		})
	}
	return map[string]any{
		"time":    time.Now().Format(time.RFC3339),
		"workers": ws,
		"jobs":    js,
	}
}

// jobNamespaces exposes each job's private metrics registry, result and
// convergence ring under /jobs/<id>/.
func jobNamespaces(coord *cluster.Coordinator) []telemetry.JobNamespace {
	var out []telemetry.JobNamespace
	for _, j := range coord.Jobs() {
		j := j
		out = append(out, telemetry.JobNamespace{
			ID:      j.ID(),
			State:   j.State().String(),
			Metrics: j.Metrics(),
			Ring:    j.Ring(),
			Report:  func() any { return j.Result() },
		})
	}
	return out
}

func init() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: casvm-cluster [-listen addr] [-serve addr] [-lease-ttl d] | -join addr\n")
		flag.PrintDefaults()
	}
}
