// casvm-cluster is the elastic cluster runtime. In coordinator mode it
// accepts worker and client registrations, gang-schedules submitted
// training jobs over the worker pool, and converts lease churn into
// recovery actions: a worker whose lease expires mid-job shrinks (or
// respawns into) the running world, and a worker joining mid-run grows it
// back at the next checkpoint epoch — landing on the fault-free model
// hash for Dis-SMO.
//
// Start a coordinator with live telemetry:
//
//	casvm-cluster -listen localhost:7600 -serve localhost:9100
//
// Join workers (each an executor that trains remotely submitted jobs'
// shard ranks in its own process, and gang capacity for in-process jobs;
// Ctrl-C leaves cleanly):
//
//	casvm-cluster -join localhost:7600
//
// Submit jobs with the thin client:
//
//	casvm-train -cluster localhost:7600 -data ijcnn -method dissmo -p 8
//
// The telemetry server namespaces each job: /jobs lists them and
// /jobs/<id>/{metrics,report,events,trace} serve one job's counters,
// outcome, live convergence stream, and merged fleet trace; the top-level
// /metrics carries the cluster_* membership counters (joins, leaves,
// lease expiries, scale-ups) plus the fleet plane's federated fleet_*
// aggregates and straggler counters, /healthz answers liveness probes
// with uptime and worker count, and /fleet/events streams straggler
// verdicts as SSE.
//
// Workers stream trace spans, metric snapshots and per-epoch durations
// over their leases (internal/telemetry/fleet); with -fleet-trace DIR the
// coordinator also writes each finished job's merged Chrome trace to
// DIR/<job-id>.trace, ready for casvm-profile or Perfetto.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"casvm/internal/cluster"
	"casvm/internal/telemetry"
	"casvm/internal/trace"
)

func main() {
	var (
		listen     = flag.String("listen", "localhost:7600", "coordinator registration address (workers and clients dial this)")
		serve      = flag.String("serve", "", "serve live telemetry on this address: /metrics, /healthz, /jobs, /jobs/<id>/{metrics,report,events,trace}, /fleet/events")
		ttl        = flag.Duration("lease-ttl", 0, "worker lease TTL; a silent worker is expired after this (0 = 6s default)")
		join       = flag.String("join", "", "worker mode: register with the coordinator at this address and execute assigned shard ranks until interrupted")
		fleetOff   = flag.Bool("no-fleet", false, "worker mode: do not stream fleet telemetry for executed shard ranks")
		fleetTrace = flag.String("fleet-trace", "", "write each finished job's merged fleet trace to this directory as <job-id>.trace")
	)
	flag.Parse()

	if *join != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		log.Printf("casvm-cluster: joining %s as an executor worker (Ctrl-C to leave)", *join)
		err := cluster.RunExecutor(ctx, *join, cluster.ExecutorOptions{
			Fleet: !*fleetOff,
			Logf:  log.Printf,
		})
		if err != nil {
			log.Fatalf("casvm-cluster: %v", err)
		}
		log.Printf("casvm-cluster: lease ended, leaving cleanly")
		return
	}

	if *fleetTrace != "" {
		if err := os.MkdirAll(*fleetTrace, 0o755); err != nil {
			log.Fatalf("casvm-cluster: -fleet-trace: %v", err)
		}
	}
	start := time.Now()
	met := trace.NewRegistry()
	var coord *cluster.Coordinator
	coord, err := cluster.New(*listen, cluster.Config{
		LeaseTTL: *ttl,
		Metrics:  met,
		Logf:     log.Printf,
		OnJobDone: func(j *cluster.Job) {
			if *fleetTrace == "" {
				return
			}
			writeFleetTrace(coord, j.ID(), *fleetTrace)
		},
	})
	if err != nil {
		log.Fatalf("casvm-cluster: %v", err)
	}
	log.Printf("casvm-cluster: coordinator listening on %s", coord.Addr())

	var srv *telemetry.Server
	if *serve != "" {
		srv, err = telemetry.Start(*serve, telemetry.Config{
			Metrics: met,
			Report:  func() any { return statusReport(coord) },
			Jobs:    func() []telemetry.JobNamespace { return jobNamespaces(coord) },
			Health: func() any {
				return map[string]any{
					"status":     "ok",
					"uptime_sec": time.Since(start).Seconds(),
					"workers":    len(coord.Workers()),
				}
			},
			Streams: map[string]telemetry.StreamSource{
				"fleet/events": coord.Fleet().StreamSource(),
			},
		})
		if err != nil {
			log.Fatalf("casvm-cluster: %v", err)
		}
		log.Printf("casvm-cluster: telemetry at http://%s (/metrics /healthz /report /jobs /fleet/events)", srv.Addr())
	}

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	log.Printf("casvm-cluster: shutting down")
	if srv != nil {
		_ = srv.Close()
	}
	if err := coord.Close(); err != nil {
		log.Fatalf("casvm-cluster: close: %v", err)
	}
}

// statusReport is the /report document: the membership table and every
// job's lifecycle position.
func statusReport(coord *cluster.Coordinator) any {
	type jobStatus struct {
		ID     string             `json:"id"`
		State  string             `json:"state"`
		Gang   []int              `json:"gang,omitempty"`
		Result *cluster.JobResult `json:"result,omitempty"`
	}
	type workerStatus struct {
		ID   int    `json:"id"`
		Addr string `json:"addr"`
	}
	var ws []workerStatus
	for _, w := range coord.Workers() {
		ws = append(ws, workerStatus{ID: w.ID, Addr: w.Addr})
	}
	var js []jobStatus
	for _, j := range coord.Jobs() {
		js = append(js, jobStatus{
			ID: j.ID(), State: j.State().String(), Gang: j.Gang(), Result: j.Result(),
		})
	}
	return map[string]any{
		"time":    time.Now().Format(time.RFC3339),
		"workers": ws,
		"jobs":    js,
	}
}

// jobNamespaces exposes each job's private metrics registry, result,
// convergence ring and (once workers have shipped spans) merged fleet
// trace under /jobs/<id>/.
func jobNamespaces(coord *cluster.Coordinator) []telemetry.JobNamespace {
	fl := coord.Fleet()
	var out []telemetry.JobNamespace
	for _, j := range coord.Jobs() {
		j := j
		ns := telemetry.JobNamespace{
			ID:      j.ID(),
			State:   j.State().String(),
			Metrics: j.Metrics(),
			Ring:    j.Ring(),
			Report:  func() any { return j.Result() },
		}
		if fl.HasTrace(j.ID()) {
			ns.Trace = func(w io.Writer) error { return fl.WriteMergedTrace(j.ID(), w) }
		}
		out = append(out, ns)
	}
	return out
}

// writeFleetTrace persists one finished job's merged trace (a no-op when
// its workers shipped no spans).
func writeFleetTrace(coord *cluster.Coordinator, jobID, dir string) {
	fl := coord.Fleet()
	if !fl.HasTrace(jobID) {
		return
	}
	path := filepath.Join(dir, jobID+".trace")
	f, err := os.Create(path)
	if err != nil {
		log.Printf("casvm-cluster: fleet trace for %s: %v", jobID, err)
		return
	}
	err = fl.WriteMergedTrace(jobID, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Printf("casvm-cluster: fleet trace for %s: %v", jobID, err)
		return
	}
	log.Printf("casvm-cluster: merged fleet trace for %s written to %s", jobID, path)
}

func init() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: casvm-cluster [-listen addr] [-serve addr] [-lease-ttl d] | -join addr\n")
		flag.PrintDefaults()
	}
}
