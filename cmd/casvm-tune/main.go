// casvm-tune grid-searches (C, γ) for a dataset and method with k-fold
// cross-validation, then refits and saves the winning model.
//
// Usage:
//
//	casvm-tune -data ijcnn -method ra-ca -p 8 -folds 5 -model tuned.model
//	casvm-tune -file train.svm -method cpsvm -p 4
package main

import (
	"flag"
	"fmt"
	"os"

	"casvm"
	"casvm/internal/core"
	"casvm/internal/tuning"
)

func main() {
	var (
		file    = flag.String("file", "", "LIBSVM-format training file")
		dataset = flag.String("data", "", "named synthetic dataset")
		scale   = flag.Float64("scale", 1.0, "synthetic dataset scale")
		method  = flag.String("method", "ra-ca", "training method")
		p       = flag.Int("p", 8, "number of ranks")
		folds   = flag.Int("folds", 3, "cross-validation folds")
		modelP  = flag.String("model", "", "write the refit winner here (optional)")
		seed    = flag.Int64("seed", 1, "fold shuffling seed")
	)
	flag.Parse()

	m, err := casvm.ParseMethod(*method)
	if err != nil {
		fail(err)
	}
	var ds *casvm.Dataset
	var gammaCenter float64
	switch {
	case *file != "":
		if ds, err = casvm.DatasetFromLIBSVM(*file, 0); err != nil {
			fail(err)
		}
		gammaCenter = 1.0 / float64(ds.Features())
	case *dataset != "":
		var entry casvm.DatasetEntry
		if ds, entry, err = casvm.LoadDataset(*dataset, *scale); err != nil {
			fail(err)
		}
		gammaCenter = entry.GammaOrDefault()
	default:
		fail(fmt.Errorf("one of -file or -data is required"))
	}

	base := core.DefaultParams(m, *p)
	grid := tuning.DefaultGrid(gammaCenter)
	fmt.Printf("grid search: %d C values × %d γ values, %d folds, method=%s\n",
		len(grid.C), len(grid.Gamma), *folds, m)
	best, all, err := tuning.GridSearch(ds.X, ds.Y, base, grid, *folds, *seed)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%10s %12s %10s\n", "C", "gamma", "cv-acc")
	for i, c := range all {
		marker := " "
		if i == 0 {
			marker = "*"
		}
		fmt.Printf("%10.3g %12.5g %9.2f%% %s\n", c.C, c.Gamma, 100*c.MeanAccuracy, marker)
	}
	fmt.Printf("winner: C=%g gamma=%g (cv accuracy %.2f%%)\n",
		best.C, best.Gamma, 100*best.MeanAccuracy)

	if *modelP != "" {
		set, err := tuning.Refit(ds.X, ds.Y, base, best)
		if err != nil {
			fail(err)
		}
		if err := casvm.SaveModelSet(*modelP, set); err != nil {
			fail(err)
		}
		fmt.Printf("refit model written to %s\n", *modelP)
		if ds.TestX != nil {
			fmt.Printf("held-out accuracy: %.2f%%\n", 100*set.Accuracy(ds.TestX, ds.TestY))
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "casvm-tune:", err)
	os.Exit(1)
}
