// casvm-bench regenerates the paper's tables and figures from this
// repository's implementation.
//
// Usage:
//
//	casvm-bench -exp table13            # one experiment
//	casvm-bench -exp all -scale 0.5     # everything, half-size datasets
//	casvm-bench -list                   # what exists
//
// Experiment ids follow the paper: table3..table22, fig5, fig7, fig8, fig9.
package main

import (
	"flag"
	"fmt"
	"os"

	"casvm/internal/expt"
	"casvm/internal/smo"
	"casvm/internal/telemetry"
	"casvm/internal/trace"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment id (table3..table22, fig5, fig7, fig8, fig9, all)")
		scale  = flag.Float64("scale", 1.0, "dataset scale multiplier")
		p      = flag.Int("p", 8, "ranks for the fixed-size experiments")
		maxP   = flag.Int("maxp", 64, "largest rank count in the scaling sweeps")
		seed   = flag.Int64("seed", 1, "run seed")
		report = flag.String("report", "", "write a JSON array of per-run structured reports to this path")
		serve  = flag.String("serve", "", "serve live telemetry on this address while experiments run: /metrics, /events (SSE), /report, /debug/pprof")
		list   = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, r := range expt.Runners() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "casvm-bench: -exp is required (or -list)")
		flag.Usage()
		os.Exit(2)
	}
	cfg := expt.Config{Out: os.Stdout, Scale: *scale, P: *p, MaxP: *maxP, Seed: *seed}
	if *report != "" {
		cfg.Reports = &expt.ReportSink{}
	}
	if *serve != "" {
		// One registry and one telemetry ring span every training run the
		// experiments perform; /report pages through the reports collected
		// so far (collection is forced on so there is something to show).
		if cfg.Reports == nil {
			cfg.Reports = &expt.ReportSink{}
		}
		cfg.Metrics = trace.NewRegistry()
		cfg.Telemetry = smo.NewTelemetryRing(0)
		srv, err := telemetry.Start(*serve, telemetry.Config{
			Metrics: cfg.Metrics,
			Ring:    cfg.Telemetry,
			Report:  func() any { return cfg.Reports.Snapshot() },
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "casvm-bench:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("telemetry: http://%s  (/metrics /events /report /debug/pprof)\n", srv.Addr())
	}
	if *exp == "all" {
		if err := expt.RunAll(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "casvm-bench:", err)
			os.Exit(1)
		}
	} else {
		r, err := expt.Find(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "casvm-bench:", err)
			os.Exit(2)
		}
		if err := expt.RunOne(r, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "casvm-bench:", err)
			os.Exit(1)
		}
	}
	if *report != "" {
		f, err := os.Create(*report)
		if err == nil {
			err = cfg.Reports.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "casvm-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("%d run reports written to %s\n", cfg.Reports.Len(), *report)
	}
}
