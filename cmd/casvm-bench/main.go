// casvm-bench regenerates the paper's tables and figures from this
// repository's implementation.
//
// Usage:
//
//	casvm-bench -exp table13            # one experiment
//	casvm-bench -exp all -scale 0.5     # everything, half-size datasets
//	casvm-bench -list                   # what exists
//
// Experiment ids follow the paper: table3..table22, fig5, fig7, fig8, fig9.
package main

import (
	"flag"
	"fmt"
	"os"

	"casvm/internal/expt"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id (table3..table22, fig5, fig7, fig8, fig9, all)")
		scale = flag.Float64("scale", 1.0, "dataset scale multiplier")
		p     = flag.Int("p", 8, "ranks for the fixed-size experiments")
		maxP  = flag.Int("maxp", 64, "largest rank count in the scaling sweeps")
		seed   = flag.Int64("seed", 1, "run seed")
		report = flag.String("report", "", "write a JSON array of per-run structured reports to this path")
		list   = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, r := range expt.Runners() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "casvm-bench: -exp is required (or -list)")
		flag.Usage()
		os.Exit(2)
	}
	cfg := expt.Config{Out: os.Stdout, Scale: *scale, P: *p, MaxP: *maxP, Seed: *seed}
	if *report != "" {
		cfg.Reports = &expt.ReportSink{}
	}
	if *exp == "all" {
		if err := expt.RunAll(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "casvm-bench:", err)
			os.Exit(1)
		}
	} else {
		r, err := expt.Find(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "casvm-bench:", err)
			os.Exit(2)
		}
		if err := expt.RunOne(r, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "casvm-bench:", err)
			os.Exit(1)
		}
	}
	if cfg.Reports != nil {
		f, err := os.Create(*report)
		if err == nil {
			err = cfg.Reports.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "casvm-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("%d run reports written to %s\n", cfg.Reports.Len(), *report)
	}
}
