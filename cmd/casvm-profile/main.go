// casvm-profile analyzes the causal section of a Chrome trace written by
// casvm-train/casvm-bench (-trace file): it rebuilds the happens-before
// DAG, extracts the critical path, and decomposes the virtual makespan
// into compute, latency, bandwidth, and wait time — overall and per
// algorithm phase.
//
// Usage:
//
//	casvm-profile run.trace                     # decomposition + top segments
//	casvm-profile -top 20 run.trace             # more of the path
//	casvm-profile -what-if tw=0.5x run.trace    # re-cost: halve the
//	                                            # per-byte bandwidth cost
//	casvm-profile -json run.trace               # machine-readable output
//
// The -what-if spec is a comma-separated list of machine-constant scale
// factors (tc, ts, tw; a trailing "x" is optional): the recorded DAG is
// re-simulated under the scaled α–β model, answering "what would this
// exact run have cost on that machine" without re-running it.
//
// Merged fleet traces (written by casvm-cluster -fleet-trace or the
// examples/distributed launcher) analyze the same way. Their timebase is
// "wall": spans were rebased from per-worker clocks onto the
// coordinator's timeline using probed clock offsets, which are printed
// per rank. Wall time cannot split a transfer into α and β, so edge cost
// is carried entirely as latency there and a tw re-cost is a no-op —
// re-cost ts to scale transfers instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"casvm/internal/trace"
	"casvm/internal/trace/critpath"
)

func main() {
	var (
		top    = flag.Int("top", 10, "print the k largest critical-path attributions")
		whatIf = flag.String("what-if", "", "re-cost spec, e.g. \"tw=0.5x\" or \"ts=2,tw=0.1\"")
		asJSON = flag.Bool("json", false, "emit the analysis as JSON instead of text")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "casvm-profile: exactly one trace file required")
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	extra, err := trace.ReadTraceExtra(f)
	f.Close()
	if err != nil {
		fatal(fmt.Errorf("%s: %w", flag.Arg(0), err))
	}
	in := critpath.FromExtra(extra)
	a, err := critpath.Analyze(in)
	if err != nil {
		fatal(err)
	}

	var what *critpath.Analysis
	var factors critpath.Factors
	if *whatIf != "" {
		factors, err = critpath.ParseFactors(*whatIf)
		if err != nil {
			fatal(err)
		}
		recosted, err := critpath.Recost(in, factors)
		if err != nil {
			fatal(fmt.Errorf("what-if: %w", err))
		}
		if what, err = critpath.Analyze(recosted); err != nil {
			fatal(fmt.Errorf("what-if: %w", err))
		}
	}

	if *asJSON {
		out := map[string]any{"analysis": a, "top_steps": a.TopSteps(*top)}
		if extra.Timebase != "" {
			out["timebase"] = extra.Timebase
		}
		if len(extra.ClockOffsetsNs) > 0 {
			out["clock_offsets_ns"] = extra.ClockOffsetsNs
		}
		if what != nil {
			out["what_if"] = map[string]any{"factors": factors, "analysis": what}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("trace: %s  (P=%d", flag.Arg(0), extra.P)
	if extra.Timebase != "" {
		fmt.Printf(", timebase=%s", extra.Timebase)
	}
	if extra.CausalityViolations > 0 {
		fmt.Printf(", CAUSALITY VIOLATIONS=%d", extra.CausalityViolations)
	}
	fmt.Println(")")
	if extra.Timebase == trace.TimebaseWall {
		if len(extra.ClockOffsetsNs) > 0 {
			fmt.Print("  clock offsets (ns, subtracted per rank):")
			for r, off := range extra.ClockOffsetsNs {
				fmt.Printf("  %d:%d", r, off)
			}
			fmt.Println()
		}
		fmt.Println("  note: wall timebase — transfer cost is all latency; bandwidth is not separable (a tw re-cost is a no-op, scale ts instead)")
	}
	printAnalysis("critical path", a)
	if *top > 0 && len(a.Path()) > 0 {
		fmt.Printf("\ntop %d attributions:\n", *top)
		for _, s := range a.TopSteps(*top) {
			phase := s.Phase
			if phase == "" {
				phase = "-"
			}
			fmt.Printf("  %12.6fs  rank %-3d %-9s %-10s [%.6f, %.6f)",
				s.AttrSec, s.Rank, s.KindStr, phase, s.Start, s.End)
			if s.EdgeID != 0 {
				fmt.Printf("  edge %d", s.EdgeID)
			}
			fmt.Println()
		}
	}
	if what != nil {
		fmt.Printf("\nwhat-if (tc×%g, ts×%g, tw×%g):\n", factors.Tc, factors.Ts, factors.Tw)
		printAnalysis("re-costed path", what)
		if a.MakespanSec > 0 {
			fmt.Printf("  speedup: %.3fx\n", a.MakespanSec/what.MakespanSec)
		}
	}
}

func printAnalysis(title string, a *critpath.Analysis) {
	fmt.Printf("%s: makespan %.6fs ending on rank %d (%d steps, %d cross-rank hops)\n",
		title, a.MakespanSec, a.EndRank, a.Steps, a.Hops)
	pct := func(v float64) float64 {
		if a.MakespanSec == 0 {
			return 0
		}
		return 100 * v / a.MakespanSec
	}
	fmt.Printf("  compute    %12.6fs  %5.1f%%\n", a.CompSec, pct(a.CompSec))
	fmt.Printf("  latency    %12.6fs  %5.1f%%\n", a.LatencySec, pct(a.LatencySec))
	fmt.Printf("  bandwidth  %12.6fs  %5.1f%%\n", a.BandwidthSec, pct(a.BandwidthSec))
	fmt.Printf("  wait       %12.6fs  %5.1f%%\n", a.WaitSec, pct(a.WaitSec))
	for _, p := range a.Phases {
		fmt.Printf("  phase %-10s %12.6fs  (comp %.6f, lat %.6f, bw %.6f, wait %.6f)\n",
			p.Phase, p.TotalSec(), p.CompSec, p.LatencySec, p.BandwidthSec, p.WaitSec)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "casvm-profile:", err)
	os.Exit(1)
}
