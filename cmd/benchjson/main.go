// benchjson converts `go test -bench` output on stdin into a JSON report.
// It keeps the numbers the perf acceptance gates care about — ns/op,
// B/op, allocs/op, and MB/s when present — keyed by benchmark name and the
// -cpu value the run used, so thread-scaling comparisons (e.g. -cpu 1,4)
// land in one machine-readable file.
//
// Usage:
//
//	go test ./... -bench . -benchmem -cpu 1,4 | benchjson > BENCH.json
//	benchjson -diff BENCH_old.json BENCH_new.json -threshold 0.15
//
// Diff mode compares two reports benchmark-by-benchmark (matched on name
// and -cpu value) and exits nonzero when any ns/op regressed past the
// threshold ratio — the CI gate behind `make bench-diff`.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name     string  `json:"name"`
	CPUs     int     `json:"cpus"`
	Iters    int64   `json:"iters"`
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   *int64  `json:"bytes_per_op,omitempty"`
	AllocsOp *int64  `json:"allocs_per_op,omitempty"`
	MBPerSec float64 `json:"mb_per_s,omitempty"`
	// Extra holds custom units reported via b.ReportMetric (e.g. the serve
	// suite's preds/s and p99-ns), keyed by unit string. Informational:
	// diff mode gates only ns/op.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the emitted document.
type Report struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	diffMode := flag.Bool("diff", false, "compare two reports: benchjson -diff old.json new.json")
	threshold := flag.Float64("threshold", 0.10, "with -diff: ns/op regression ratio that fails the diff (0.10 = 10%)")
	flag.Parse()
	if *diffMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two report paths (old new)")
			os.Exit(2)
		}
		regressed, err := diffReports(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if regressed {
			os.Exit(1)
		}
		return
	}

	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if r, ok := parseLine(line); ok {
			rep.Results = append(rep.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine decodes one result line, e.g.
//
//	BenchmarkSolve-4   10   12345678 ns/op   128 B/op   3 allocs/op
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	r := Result{Name: fields[0], CPUs: 1}
	if i := strings.LastIndexByte(r.Name, '-'); i > 0 {
		if n, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.CPUs = r.Name[:i], n
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iters = iters
	// Remaining fields come in "<value> <unit>" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			b := int64(v)
			r.BPerOp = &b
		case "allocs/op":
			a := int64(v)
			r.AllocsOp = &a
		case "MB/s":
			r.MBPerSec = v
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[fields[i+1]] = v
		}
	}
	return r, r.NsPerOp > 0
}
