package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// diffReports loads two benchjson reports and prints a comparison; it
// returns true when any benchmark present in both regressed its ns/op by
// more than threshold (a ratio: 0.10 = 10% slower). Benchmarks that exist
// on only one side are reported but never gate.
func diffReports(w io.Writer, oldPath, newPath string, threshold float64) (bool, error) {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return false, err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return false, err
	}
	return diff(w, oldRep, newRep, threshold), nil
}

func loadReport(path string) (Report, error) {
	var rep Report
	b, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

type benchKey struct {
	name string
	cpus int
}

func diff(w io.Writer, oldRep, newRep Report, threshold float64) bool {
	old := map[benchKey]Result{}
	for _, r := range oldRep.Results {
		old[benchKey{r.Name, r.CPUs}] = r
	}
	seen := map[benchKey]bool{}
	regressed := false
	for _, n := range newRep.Results {
		k := benchKey{n.Name, n.CPUs}
		seen[k] = true
		o, ok := old[k]
		if !ok {
			fmt.Fprintf(w, "  new      %s-%d  %.0f ns/op\n", n.Name, n.CPUs, n.NsPerOp)
			continue
		}
		ratio := n.NsPerOp/o.NsPerOp - 1
		verdict := "ok"
		if ratio > threshold {
			verdict = "REGRESSED"
			regressed = true
		}
		fmt.Fprintf(w, "  %-9s%s-%d  %.0f → %.0f ns/op (%+.1f%%)%s\n",
			verdict, n.Name, n.CPUs, o.NsPerOp, n.NsPerOp, 100*ratio, allocsDelta(o, n))
	}
	var gone []benchKey
	for k := range old {
		if !seen[k] {
			gone = append(gone, k)
		}
	}
	sort.Slice(gone, func(i, j int) bool {
		if gone[i].name != gone[j].name {
			return gone[i].name < gone[j].name
		}
		return gone[i].cpus < gone[j].cpus
	})
	for _, k := range gone {
		fmt.Fprintf(w, "  gone     %s-%d\n", k.name, k.cpus)
	}
	if regressed {
		fmt.Fprintf(w, "FAIL: ns/op regression past %.0f%% threshold\n", 100*threshold)
	}
	return regressed
}

// allocsDelta renders the allocs/op and B/op movement when both sides
// measured them (informational only — allocations do not gate).
func allocsDelta(o, n Result) string {
	s := ""
	if o.AllocsOp != nil && n.AllocsOp != nil && *o.AllocsOp != *n.AllocsOp {
		s += fmt.Sprintf("  allocs %d → %d", *o.AllocsOp, *n.AllocsOp)
	}
	if o.BPerOp != nil && n.BPerOp != nil && *o.BPerOp != *n.BPerOp {
		s += fmt.Sprintf("  B/op %d → %d", *o.BPerOp, *n.BPerOp)
	}
	return s
}
