package main

import (
	"strings"
	"testing"
)

func i64(v int64) *int64 { return &v }

func rep(results ...Result) Report { return Report{Results: results} }

func TestDiffGatesOnNsPerOp(t *testing.T) {
	old := rep(
		Result{Name: "BenchmarkSolve", CPUs: 1, NsPerOp: 1000, AllocsOp: i64(3)},
		Result{Name: "BenchmarkSolve", CPUs: 4, NsPerOp: 400},
	)
	cases := []struct {
		name      string
		newRep    Report
		threshold float64
		regressed bool
	}{
		{"within threshold", rep(
			Result{Name: "BenchmarkSolve", CPUs: 1, NsPerOp: 1090, AllocsOp: i64(3)},
			Result{Name: "BenchmarkSolve", CPUs: 4, NsPerOp: 400}), 0.10, false},
		{"past threshold", rep(
			Result{Name: "BenchmarkSolve", CPUs: 1, NsPerOp: 1200, AllocsOp: i64(3)},
			Result{Name: "BenchmarkSolve", CPUs: 4, NsPerOp: 400}), 0.10, true},
		{"only one cpu variant regresses", rep(
			Result{Name: "BenchmarkSolve", CPUs: 1, NsPerOp: 1000},
			Result{Name: "BenchmarkSolve", CPUs: 4, NsPerOp: 900}), 0.10, true},
		{"improvement never gates", rep(
			Result{Name: "BenchmarkSolve", CPUs: 1, NsPerOp: 100},
			Result{Name: "BenchmarkSolve", CPUs: 4, NsPerOp: 40}), 0.10, false},
		{"new and gone benchmarks never gate", rep(
			Result{Name: "BenchmarkOther", CPUs: 1, NsPerOp: 1e9}), 0.10, false},
	}
	for _, c := range cases {
		var b strings.Builder
		if got := diff(&b, old, c.newRep, c.threshold); got != c.regressed {
			t.Errorf("%s: regressed=%v, want %v\n%s", c.name, got, c.regressed, b.String())
		}
	}
}

func TestDiffOutputDetails(t *testing.T) {
	old := rep(
		Result{Name: "BenchmarkA", CPUs: 1, NsPerOp: 1000, AllocsOp: i64(0), BPerOp: i64(0)},
		Result{Name: "BenchmarkGone", CPUs: 1, NsPerOp: 5},
	)
	next := rep(
		Result{Name: "BenchmarkA", CPUs: 1, NsPerOp: 2000, AllocsOp: i64(7), BPerOp: i64(640)},
		Result{Name: "BenchmarkNew", CPUs: 1, NsPerOp: 9},
	)
	var b strings.Builder
	if !diff(&b, old, next, 0.10) {
		t.Fatal("2x slowdown must regress")
	}
	out := b.String()
	for _, want := range []string{
		"REGRESSED",
		"1000 → 2000 ns/op (+100.0%)",
		"allocs 0 → 7",
		"B/op 0 → 640",
		"new      BenchmarkNew-1",
		"gone     BenchmarkGone-1",
		"FAIL: ns/op regression past 10% threshold",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff output missing %q:\n%s", want, out)
		}
	}
}
