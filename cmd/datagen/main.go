// datagen emits the synthetic benchmark datasets in LIBSVM text format so
// they can be fed to other SVM tools (or back into casvm-train -file).
//
// Usage:
//
//	datagen -data face -scale 0.5 -out face.svm -test face.t.svm
package main

import (
	"flag"
	"fmt"
	"os"

	"casvm"
)

func main() {
	var (
		dataset = flag.String("data", "", "named synthetic dataset")
		scale   = flag.Float64("scale", 1.0, "dataset scale")
		out     = flag.String("out", "", "training output path (required)")
		test    = flag.String("test", "", "held-out output path (optional)")
	)
	flag.Parse()
	if *dataset == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -data and -out are required; datasets:")
		for _, n := range casvm.DatasetNames() {
			fmt.Fprintln(os.Stderr, "  ", n)
		}
		os.Exit(2)
	}
	ds, _, err := casvm.LoadDataset(*dataset, *scale)
	if err != nil {
		fail(err)
	}
	if err := casvm.WriteLIBSVMFile(*out, ds); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %d×%d training samples to %s\n", ds.M(), ds.Features(), *out)
	if *test != "" && ds.TestX != nil {
		td := &casvm.Dataset{Name: ds.Name + "-test", X: ds.TestX, Y: ds.TestY}
		if err := casvm.WriteLIBSVMFile(*test, td); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d held-out samples to %s\n", ds.TestX.Rows(), *test)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
