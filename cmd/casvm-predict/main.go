// casvm-predict classifies a LIBSVM-format file with a saved casvm model
// set, printing one ±1 prediction per line and, when the file carries
// labels, the accuracy.
//
// Usage:
//
//	casvm-predict -model out.model -file test.svm
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"casvm"
)

func main() {
	var (
		modelP = flag.String("model", "casvm.model", "model path")
		file   = flag.String("file", "", "LIBSVM-format input file")
		quiet  = flag.Bool("quiet", false, "suppress per-sample output")
	)
	flag.Parse()
	if *file == "" {
		fail(fmt.Errorf("-file is required"))
	}
	set, err := casvm.LoadModelSet(*modelP)
	if err != nil {
		fail(err)
	}
	ds, err := casvm.DatasetFromLIBSVM(*file, set.Centers.Features())
	if err != nil {
		fail(err)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	correct := 0
	for i := 0; i < ds.X.Rows(); i++ {
		pred := set.Predict(ds.X, i)
		if !*quiet {
			fmt.Fprintf(w, "%+.0f\n", pred)
		}
		if pred == ds.Y[i] {
			correct++
		}
	}
	fmt.Fprintf(w, "accuracy: %.2f%% (%d/%d)\n",
		100*float64(correct)/float64(ds.X.Rows()), correct, ds.X.Rows())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "casvm-predict:", err)
	os.Exit(1)
}
