// casvm-predict classifies a LIBSVM-format file with a saved casvm model
// set, printing one ±1 prediction per line and, when the file carries
// labels, the accuracy. Predictions go through the batched PredictAll tile
// path — the same engine the serving plane uses — so classifying a large
// file streams the support-vector matrix once per tile instead of once per
// sample.
//
// Usage:
//
//	casvm-predict -model out.model -file test.svm
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"casvm"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "casvm-predict:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("casvm-predict", flag.ContinueOnError)
	var (
		modelP = fs.String("model", "casvm.model", "model path")
		file   = fs.String("file", "", "LIBSVM-format input file")
		quiet  = fs.Bool("quiet", false, "suppress per-sample output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return fmt.Errorf("-file is required")
	}
	set, err := casvm.LoadModelSet(*modelP)
	if err != nil {
		return err
	}
	ds, err := casvm.DatasetFromLIBSVM(*file, set.Centers.Features())
	if err != nil {
		return err
	}
	preds := set.PredictAll(ds.X)
	w := bufio.NewWriter(stdout)
	defer w.Flush()
	correct := 0
	for i, pred := range preds {
		if !*quiet {
			fmt.Fprintf(w, "%+.0f\n", pred)
		}
		if pred == ds.Y[i] {
			correct++
		}
	}
	fmt.Fprintf(w, "accuracy: %.2f%% (%d/%d)\n",
		100*float64(correct)/float64(len(preds)), correct, len(preds))
	return nil
}
