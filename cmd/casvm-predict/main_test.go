package main

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"casvm"
)

// TestRunMatchesPerRowPredict pins the CLI's output after the switch to the
// batched PredictAll path: line-for-line identical to what the historical
// per-row Predict loop printed, including the accuracy summary.
func TestRunMatchesPerRowPredict(t *testing.T) {
	ds, err := casvm.GenerateDataset(casvm.MixtureSpec{
		Name: "predict-cli", Train: 240, Test: 80, Features: 6, Clusters: 4,
		Separation: 2.5, Noise: 0.6, PosFrac: []float64{0.5}, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := casvm.DefaultParams(casvm.MethodRACA, 4)
	p.Kernel = casvm.RBF(1.0 / 6)
	out, err := casvm.Train(ds.X, ds.Y, p)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "m.model")
	if err := casvm.SaveModelSet(modelPath, out.Set); err != nil {
		t.Fatal(err)
	}
	testPath := filepath.Join(dir, "test.svm")
	if err := casvm.WriteLIBSVMFile(testPath, &casvm.Dataset{X: ds.TestX, Y: ds.TestY}); err != nil {
		t.Fatal(err)
	}

	var got strings.Builder
	if err := run([]string{"-model", modelPath, "-file", testPath}, &got); err != nil {
		t.Fatal(err)
	}

	// Reference: the per-row entry point the CLI used before batching.
	set, err := casvm.LoadModelSet(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	reload, err := casvm.DatasetFromLIBSVM(testPath, set.Centers.Features())
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	correct := 0
	for i := 0; i < reload.X.Rows(); i++ {
		pred := set.Predict(reload.X, i)
		fmt.Fprintf(&want, "%+.0f\n", pred)
		if pred == reload.Y[i] {
			correct++
		}
	}
	fmt.Fprintf(&want, "accuracy: %.2f%% (%d/%d)\n",
		100*float64(correct)/float64(reload.X.Rows()), correct, reload.X.Rows())

	if got.String() != want.String() {
		t.Fatalf("batched CLI output diverged from per-row reference:\ngot:\n%s\nwant:\n%s",
			got.String(), want.String())
	}
	if !strings.Contains(got.String(), "accuracy:") {
		t.Fatal("no accuracy summary in output")
	}

	// -quiet keeps only the summary line.
	var quiet strings.Builder
	if err := run([]string{"-model", modelPath, "-file", testPath, "-quiet"}, &quiet); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(quiet.String(), "\n"); n != 1 {
		t.Fatalf("-quiet printed %d lines, want 1:\n%s", n, quiet.String())
	}

	// Error paths surface as errors, not exits.
	if err := run([]string{"-model", modelPath}, &got); err == nil {
		t.Fatal("missing -file should error")
	}
	if err := run([]string{"-model", filepath.Join(dir, "nope.model"), "-file", testPath}, &got); err == nil {
		t.Fatal("missing model should error")
	}
}
